#include "src/distance/simd.h"

#include "src/common/hotpath.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

// x86-64 only (not __i386__): the SSE tier relies on SSE2 being an
// architectural baseline, which holds for x86-64 but not 32-bit x86.
// Other architectures use the scalar table.
#if defined(__x86_64__)
#define ODYSSEY_X86 1
#include <immintrin.h>
#endif

namespace odyssey {
namespace simd {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Block length for the DTW row kernels: the vectorizable parts (point cost
/// and the prev-row two-way min) are staged into stack buffers of this many
/// floats, then the loop-carried cur[j-1] dependency is folded in scalar.
constexpr size_t kDtwBlock = 128;

// --------------------------------------------------------------- scalar

ODYSSEY_HOT float SquaredEuclideanScalarK(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT float SquaredEuclideanEarlyAbandonScalarK(const float* a, const float* b,
                                          size_t n, float threshold) {
  float sum = 0.0f;
  size_t i = 0;
  // Check the threshold once per 16-point block: frequent enough to abandon
  // early, rare enough not to serialize the loop. Every ISA level uses the
  // same cadence so all levels abandon at the same point.
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j) {
      const float d = a[i + j] - b[i + j];
      sum += d * d;
    }
    i += 16;
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

inline float LbKeoghPointGap(float upper, float lower, float c) {
  // max(c - upper, lower - c, 0): positive only outside the envelope band.
  float d = c - upper;
  const float dl = lower - c;
  if (dl > d) d = dl;
  return d > 0.0f ? d : 0.0f;
}

ODYSSEY_HOT float LbKeoghScalarK(const float* upper, const float* lower,
                     const float* candidate, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT float LbKeoghEarlyAbandonScalarK(const float* upper, const float* lower,
                                 const float* candidate, size_t n,
                                 float threshold) {
  float sum = 0.0f;
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j) {
      const float d =
          LbKeoghPointGap(upper[i + j], lower[i + j], candidate[i + j]);
      sum += d * d;
    }
    i += 16;
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT void PaaScalarK(const float* series, size_t n, int segments, double* out) {
  size_t begin = 0;
  for (int i = 0; i < segments; ++i) {
    const size_t end =
        (static_cast<size_t>(i) + 1) * n / static_cast<size_t>(segments);
    double sum = 0.0;
    for (size_t t = begin; t < end; ++t) sum += series[t];
    out[i] = sum / static_cast<double>(end - begin);
    begin = end;
  }
}

// Batched kernels, scalar tier: the per-lane reference semantics every
// vector tier must reproduce bit-for-bit. Each query lane accumulates in
// point order with separate mul+add (this file pins -ffp-contract=off), is
// checked against its threshold every 16 points, and freezes its output at
// the first crossing — exactly the per-query scalar early-abandon kernel,
// just reading the query through the interleaved stride.

ODYSSEY_HOT void BatchedSquaredEuclideanEarlyAbandonScalarK(
    const float* candidate, const float* queries, size_t n, size_t stride,
    size_t q_count, const float* thresholds, float* out) {
  for (size_t q = 0; q < q_count; ++q) {
    const float threshold = thresholds[q];
    float sum = 0.0f;
    size_t i = 0;
    bool frozen = false;
    while (i + 16 <= n) {
      for (size_t j = 0; j < 16; ++j) {
        const float d = candidate[i + j] - queries[(i + j) * stride + q];
        sum += d * d;
      }
      i += 16;
      if (sum >= threshold) {
        frozen = true;
        break;
      }
    }
    if (!frozen) {
      for (; i < n; ++i) {
        const float d = candidate[i] - queries[i * stride + q];
        sum += d * d;
      }
    }
    out[q] = sum;
  }
}

ODYSSEY_HOT void BatchedLbKeoghEarlyAbandonScalarK(const float* candidate,
                                       const float* upper, const float* lower,
                                       size_t n, size_t stride, size_t q_count,
                                       const float* thresholds, float* out) {
  for (size_t q = 0; q < q_count; ++q) {
    const float threshold = thresholds[q];
    float sum = 0.0f;
    size_t i = 0;
    bool frozen = false;
    while (i + 16 <= n) {
      for (size_t j = 0; j < 16; ++j) {
        const size_t at = (i + j) * stride + q;
        const float d =
            LbKeoghPointGap(upper[at], lower[at], candidate[i + j]);
        sum += d * d;
      }
      i += 16;
      if (sum >= threshold) {
        frozen = true;
        break;
      }
    }
    if (!frozen) {
      for (; i < n; ++i) {
        const size_t at = i * stride + q;
        const float d = LbKeoghPointGap(upper[at], lower[at], candidate[i]);
        sum += d * d;
      }
    }
    out[q] = sum;
  }
}

ODYSSEY_HOT float DtwRowScalarK(float ai, const float* b, const float* prev, float* cur,
                    size_t jlo, size_t jhi) {
  float row_min = kInf;
  size_t j = jlo;
  if (j == 0) {
    const float d = ai - b[0];
    cur[0] = d * d + prev[0];
    row_min = cur[0];
    j = 1;
  }
  for (; j <= jhi; ++j) {
    const float d = ai - b[j];
    float best = prev[j];
    if (prev[j - 1] < best) best = prev[j - 1];
    if (cur[j - 1] < best) best = cur[j - 1];
    cur[j] = d * d + best;
    if (cur[j] < row_min) row_min = cur[j];
  }
  return row_min;
}

constexpr KernelTable kScalarTable = {
    Isa::kScalar,
    SquaredEuclideanScalarK,
    SquaredEuclideanEarlyAbandonScalarK,
    LbKeoghScalarK,
    LbKeoghEarlyAbandonScalarK,
    BatchedSquaredEuclideanEarlyAbandonScalarK,
    BatchedLbKeoghEarlyAbandonScalarK,
    PaaScalarK,
    DtwRowScalarK,
};

#if defined(ODYSSEY_X86)

// Scalar remainder of the staging arrays for lanes [t, len) of a DTW row
// block starting at column j — shared by the SSE and AVX2 row kernels so
// the two cannot drift apart.
inline void DtwStageTail(float ai, const float* b, const float* prev,
                         size_t j, size_t t, size_t len, float* cost,
                         float* s) {
  for (; t < len; ++t) {
    const float d = ai - b[j + t];
    cost[t] = d * d;
    const float pm =
        prev[j + t] < prev[j + t - 1] ? prev[j + t] : prev[j + t - 1];
    s[t] = cost[t] + pm;
  }
}

// Folds the cur[j-1] dependency chain over one staged block; returns the
// updated row minimum. cur[j] = min(s[j], cost[j] + cur[j-1]) equals
// cost[j] + min(prev[j], prev[j-1], cur[j-1]) bit-for-bit because float
// addition is monotone.
inline float DtwFoldBlock(const float* cost, const float* s, float* cur,
                          size_t j, size_t len, float row_min) {
  for (size_t t = 0; t < len; ++t) {
    const float left = cost[t] + cur[j + t - 1];
    const float v = s[t] < left ? s[t] : left;
    cur[j + t] = v;
    if (v < row_min) row_min = v;
  }
  return row_min;
}

// ------------------------------------------------------------------ SSE
// x86-64 baseline (SSE2) — always available, no target attribute needed.

inline float HorizontalSum128(__m128 v) {
  const __m128 hi = _mm_movehl_ps(v, v);           // lanes [2,3,·,·]
  const __m128 sum2 = _mm_add_ps(v, hi);           // [0+2, 1+3, ·, ·]
  const __m128 lane1 = _mm_shuffle_ps(sum2, sum2, 0x55);
  return _mm_cvtss_f32(_mm_add_ss(sum2, lane1));
}

ODYSSEY_HOT float SquaredEuclideanSseK(const float* a, const float* b, size_t n) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  }
  float sum = HorizontalSum128(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT float SquaredEuclideanEarlyAbandonSseK(const float* a, const float* b,
                                       size_t n, float threshold) {
  __m128 acc = _mm_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t k = 0; k < 16; k += 4) {
      const __m128 d =
          _mm_sub_ps(_mm_loadu_ps(a + i + k), _mm_loadu_ps(b + i + k));
      acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    i += 16;
    sum = HorizontalSum128(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

inline __m128 LbKeoghGap128(const float* upper, const float* lower,
                            const float* candidate) {
  const __m128 c = _mm_loadu_ps(candidate);
  const __m128 du = _mm_sub_ps(c, _mm_loadu_ps(upper));
  const __m128 dl = _mm_sub_ps(_mm_loadu_ps(lower), c);
  return _mm_max_ps(_mm_max_ps(du, dl), _mm_setzero_ps());
}

ODYSSEY_HOT float LbKeoghSseK(const float* upper, const float* lower,
                  const float* candidate, size_t n) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 d = LbKeoghGap128(upper + i, lower + i, candidate + i);
    acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  }
  float sum = HorizontalSum128(acc);
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT float LbKeoghEarlyAbandonSseK(const float* upper, const float* lower,
                              const float* candidate, size_t n,
                              float threshold) {
  __m128 acc = _mm_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t k = 0; k < 16; k += 4) {
      const __m128 d =
          LbKeoghGap128(upper + i + k, lower + i + k, candidate + i + k);
      acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    i += 16;
    sum = HorizontalSum128(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT void PaaSseK(const float* series, size_t n, int segments, double* out) {
  size_t begin = 0;
  for (int i = 0; i < segments; ++i) {
    const size_t end =
        (static_cast<size_t>(i) + 1) * n / static_cast<size_t>(segments);
    // Two independent accumulators keep the add_pd latency chains off the
    // critical path (a segment is typically 16 points: 4 iterations here).
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    size_t t = begin;
    for (; t + 4 <= end; t += 4) {
      const __m128 v = _mm_loadu_ps(series + t);
      acc0 = _mm_add_pd(acc0, _mm_cvtps_pd(v));
      acc1 = _mm_add_pd(acc1, _mm_cvtps_pd(_mm_movehl_ps(v, v)));
    }
    const __m128d acc = _mm_add_pd(acc0, acc1);
    double sum = _mm_cvtsd_f64(acc) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
    for (; t < end; ++t) sum += series[t];
    out[i] = sum / static_cast<double>(end - begin);
    begin = end;
  }
}

ODYSSEY_HOT float DtwRowSseK(float ai, const float* b, const float* prev, float* cur,
                 size_t jlo, size_t jhi) {
  float row_min = kInf;
  size_t j = jlo;
  if (j == 0) {
    const float d = ai - b[0];
    cur[0] = d * d + prev[0];
    row_min = cur[0];
    j = 1;
  }
  // Stage the order-independent parts of each block with SIMD: the point
  // costs and s[j] = cost[j] + min(prev[j], prev[j-1]). The scalar fold
  // (DtwFoldBlock) then only carries the cur[j-1] chain. Costs use mul
  // (not FMA) so every ISA produces bit-identical DP rows.
  float cost[kDtwBlock];
  float s[kDtwBlock];
  const __m128 vai = _mm_set1_ps(ai);
  while (j <= jhi) {
    const size_t len = (jhi - j + 1 < kDtwBlock) ? jhi - j + 1 : kDtwBlock;
    size_t t = 0;
    for (; t + 4 <= len; t += 4) {
      const __m128 d = _mm_sub_ps(vai, _mm_loadu_ps(b + j + t));
      const __m128 c = _mm_mul_ps(d, d);
      _mm_storeu_ps(cost + t, c);
      const __m128 p0 = _mm_loadu_ps(prev + j + t);
      const __m128 p1 = _mm_loadu_ps(prev + j + t - 1);
      _mm_storeu_ps(s + t, _mm_add_ps(c, _mm_min_ps(p0, p1)));
    }
    DtwStageTail(ai, b, prev, j, t, len, cost, s);
    row_min = DtwFoldBlock(cost, s, cur, j, len, row_min);
    j += len;
  }
  return row_min;
}

// Batched kernels, vector tiers: one query per SIMD lane over the
// interleaved layout, so each lane's accumulation is point-sequential
// mul+add — bit-identical to the scalar per-query kernel by construction
// (no horizontal reduction ever happens; lanes never mix). Lane groups of
// the vector width walk the candidate one group at a time; after the first
// group the candidate is L1-resident, so memory traffic stays one candidate
// read per call. Abandon bookkeeping is a per-group bitmask: every 16
// points, lanes newly at/above their threshold store their partial sum to
// out and freeze (later, larger sums must not overwrite the value the
// scalar kernel would have returned at its first crossing); frozen lanes
// keep accumulating garbage harmlessly — their output is already written —
// and a fully-frozen group exits its point loop early, preserving the
// abandon win. Threshold lanes beyond q_count are padded with +inf so they
// never freeze and never store.

ODYSSEY_HOT void BatchedSquaredEuclideanEarlyAbandonSseK(
    const float* candidate, const float* queries, size_t n, size_t stride,
    size_t q_count, const float* thresholds, float* out) {
  for (size_t g = 0; g < q_count; g += 4) {
    const size_t lanes = (q_count - g < 4) ? q_count - g : 4;
    const unsigned full = (1u << lanes) - 1u;
    alignas(16) float thr_pad[4] = {kInf, kInf, kInf, kInf};
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m128 thr = _mm_load_ps(thr_pad);
    __m128 acc = _mm_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const __m128 c = _mm_set1_ps(candidate[i + j]);
        const __m128 qv = _mm_loadu_ps(queries + (i + j) * stride + g);
        const __m128 d = _mm_sub_ps(c, qv);
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed =
          static_cast<unsigned>(_mm_movemask_ps(_mm_cmpge_ps(acc, thr)));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(16) float sums[4];
        _mm_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const __m128 c = _mm_set1_ps(candidate[i]);
        const __m128 qv = _mm_loadu_ps(queries + i * stride + g);
        const __m128 d = _mm_sub_ps(c, qv);
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
      }
      alignas(16) float sums[4];
      _mm_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

ODYSSEY_HOT void BatchedLbKeoghEarlyAbandonSseK(const float* candidate, const float* upper,
                                    const float* lower, size_t n,
                                    size_t stride, size_t q_count,
                                    const float* thresholds, float* out) {
  for (size_t g = 0; g < q_count; g += 4) {
    const size_t lanes = (q_count - g < 4) ? q_count - g : 4;
    const unsigned full = (1u << lanes) - 1u;
    alignas(16) float thr_pad[4] = {kInf, kInf, kInf, kInf};
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m128 thr = _mm_load_ps(thr_pad);
    __m128 acc = _mm_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const size_t at = (i + j) * stride + g;
        const __m128 c = _mm_set1_ps(candidate[i + j]);
        const __m128 du = _mm_sub_ps(c, _mm_loadu_ps(upper + at));
        const __m128 dl = _mm_sub_ps(_mm_loadu_ps(lower + at), c);
        const __m128 d =
            _mm_max_ps(_mm_max_ps(du, dl), _mm_setzero_ps());
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed =
          static_cast<unsigned>(_mm_movemask_ps(_mm_cmpge_ps(acc, thr)));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(16) float sums[4];
        _mm_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const size_t at = i * stride + g;
        const __m128 c = _mm_set1_ps(candidate[i]);
        const __m128 du = _mm_sub_ps(c, _mm_loadu_ps(upper + at));
        const __m128 dl = _mm_sub_ps(_mm_loadu_ps(lower + at), c);
        const __m128 d =
            _mm_max_ps(_mm_max_ps(du, dl), _mm_setzero_ps());
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
      }
      alignas(16) float sums[4];
      _mm_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

constexpr KernelTable kSseTable = {
    Isa::kSse,
    SquaredEuclideanSseK,
    SquaredEuclideanEarlyAbandonSseK,
    LbKeoghSseK,
    LbKeoghEarlyAbandonSseK,
    BatchedSquaredEuclideanEarlyAbandonSseK,
    BatchedLbKeoghEarlyAbandonSseK,
    PaaSseK,
    DtwRowSseK,
};

// ----------------------------------------------------------------- AVX2
// Compiled with per-function target attributes so the rest of the library
// keeps the baseline ISA; only ever called after a CPUID check.

#define ODYSSEY_TARGET_AVX2 __attribute__((target("avx2,fma")))

ODYSSEY_TARGET_AVX2 inline float HorizontalSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  return HorizontalSum128(_mm_add_ps(lo, hi));
}

// Aligned-load fast path predicate: every operand sits on a 32-byte
// boundary, so the kernel may use vmovaps and — when the length is a lane
// multiple — drop the scalar tail entirely. SeriesCollection allocates its
// storage 64-byte aligned, so for the common series lengths (multiples of
// 8) every row qualifies. The fast paths keep the exact accumulation order
// of the generic loops (same lane striping, FMA, and abandon cadence), so
// results are bit-identical — asserted by the distance property tests.
inline bool Aligned32(const float* p) {
  return (reinterpret_cast<uintptr_t>(p) & 31u) == 0;
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT float SquaredEuclideanAvx2K(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  if (n % 8 == 0 && Aligned32(a) && Aligned32(b)) {
    for (size_t i = 0; i < n; i += 8) {
      const __m256 d =
          _mm256_sub_ps(_mm256_load_ps(a + i), _mm256_load_ps(b + i));
      acc = _mm256_fmadd_ps(d, d, acc);
    }
    return HorizontalSum256(acc);
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = HorizontalSum256(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT float SquaredEuclideanEarlyAbandonAvx2K(const float* a, const float* b,
                                        size_t n, float threshold) {
  __m256 acc = _mm256_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  if (n % 16 == 0 && Aligned32(a) && Aligned32(b)) {
    // Tail-free aligned variant of the loop below (the 16-point abandon
    // block matches the lane unroll, so n % 16 == 0 leaves no remainder).
    while (i < n) {
      const __m256 d0 =
          _mm256_sub_ps(_mm256_load_ps(a + i), _mm256_load_ps(b + i));
      acc = _mm256_fmadd_ps(d0, d0, acc);
      const __m256 d1 =
          _mm256_sub_ps(_mm256_load_ps(a + i + 8), _mm256_load_ps(b + i + 8));
      acc = _mm256_fmadd_ps(d1, d1, acc);
      i += 16;
      sum = HorizontalSum256(acc);
      if (sum >= threshold) return sum;
    }
    return sum;
  }
  // Two unrolled 8-lane FMAs per iteration, threshold check per 16 points.
  while (i + 16 <= n) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_fmadd_ps(d0, d0, acc);
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc = _mm256_fmadd_ps(d1, d1, acc);
    i += 16;
    sum = HorizontalSum256(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX2 inline __m256 LbKeoghGap256(const float* upper,
                                                const float* lower,
                                                const float* candidate) {
  const __m256 c = _mm256_loadu_ps(candidate);
  const __m256 du = _mm256_sub_ps(c, _mm256_loadu_ps(upper));
  const __m256 dl = _mm256_sub_ps(_mm256_loadu_ps(lower), c);
  return _mm256_max_ps(_mm256_max_ps(du, dl), _mm256_setzero_ps());
}

ODYSSEY_TARGET_AVX2 inline __m256 LbKeoghGap256Aligned(
    const float* upper, const float* lower, const float* candidate) {
  const __m256 c = _mm256_load_ps(candidate);
  const __m256 du = _mm256_sub_ps(c, _mm256_load_ps(upper));
  const __m256 dl = _mm256_sub_ps(_mm256_load_ps(lower), c);
  return _mm256_max_ps(_mm256_max_ps(du, dl), _mm256_setzero_ps());
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT float LbKeoghAvx2K(const float* upper, const float* lower,
                   const float* candidate, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  if (n % 8 == 0 && Aligned32(upper) && Aligned32(lower) &&
      Aligned32(candidate)) {
    for (size_t i = 0; i < n; i += 8) {
      const __m256 d =
          LbKeoghGap256Aligned(upper + i, lower + i, candidate + i);
      acc = _mm256_fmadd_ps(d, d, acc);
    }
    return HorizontalSum256(acc);
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = LbKeoghGap256(upper + i, lower + i, candidate + i);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = HorizontalSum256(acc);
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT float LbKeoghEarlyAbandonAvx2K(const float* upper, const float* lower,
                               const float* candidate, size_t n,
                               float threshold) {
  __m256 acc = _mm256_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  if (n % 16 == 0 && Aligned32(upper) && Aligned32(lower) &&
      Aligned32(candidate)) {
    while (i < n) {
      const __m256 d0 =
          LbKeoghGap256Aligned(upper + i, lower + i, candidate + i);
      acc = _mm256_fmadd_ps(d0, d0, acc);
      const __m256 d1 = LbKeoghGap256Aligned(upper + i + 8, lower + i + 8,
                                             candidate + i + 8);
      acc = _mm256_fmadd_ps(d1, d1, acc);
      i += 16;
      sum = HorizontalSum256(acc);
      if (sum >= threshold) return sum;
    }
    return sum;
  }
  while (i + 16 <= n) {
    const __m256 d0 = LbKeoghGap256(upper + i, lower + i, candidate + i);
    acc = _mm256_fmadd_ps(d0, d0, acc);
    const __m256 d1 =
        LbKeoghGap256(upper + i + 8, lower + i + 8, candidate + i + 8);
    acc = _mm256_fmadd_ps(d1, d1, acc);
    i += 16;
    sum = HorizontalSum256(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT void PaaAvx2K(const float* series, size_t n, int segments, double* out) {
  size_t begin = 0;
  for (int i = 0; i < segments; ++i) {
    const size_t end =
        (static_cast<size_t>(i) + 1) * n / static_cast<size_t>(segments);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    size_t t = begin;
    for (; t + 8 <= end; t += 8) {
      acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm_loadu_ps(series + t)));
      acc1 =
          _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm_loadu_ps(series + t + 4)));
    }
    const __m256d acc = _mm256_add_pd(acc0, acc1);
    const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                    _mm256_extractf128_pd(acc, 1));
    double sum = _mm_cvtsd_f64(pair) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
    for (; t < end; ++t) sum += series[t];
    out[i] = sum / static_cast<double>(end - begin);
    begin = end;
  }
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT float DtwRowAvx2K(float ai, const float* b, const float* prev, float* cur,
                  size_t jlo, size_t jhi) {
  float row_min = kInf;
  size_t j = jlo;
  if (j == 0) {
    const float d = ai - b[0];
    cur[0] = d * d + prev[0];
    row_min = cur[0];
    j = 1;
  }
  // Same staging scheme as the SSE row kernel (see its comment); 8 lanes.
  float cost[kDtwBlock];
  float s[kDtwBlock];
  const __m256 vai = _mm256_set1_ps(ai);
  while (j <= jhi) {
    const size_t len = (jhi - j + 1 < kDtwBlock) ? jhi - j + 1 : kDtwBlock;
    size_t t = 0;
    for (; t + 8 <= len; t += 8) {
      const __m256 d = _mm256_sub_ps(vai, _mm256_loadu_ps(b + j + t));
      const __m256 c = _mm256_mul_ps(d, d);
      _mm256_storeu_ps(cost + t, c);
      const __m256 p0 = _mm256_loadu_ps(prev + j + t);
      const __m256 p1 = _mm256_loadu_ps(prev + j + t - 1);
      _mm256_storeu_ps(s + t, _mm256_add_ps(c, _mm256_min_ps(p0, p1)));
    }
    DtwStageTail(ai, b, prev, j, t, len, cost, s);
    row_min = DtwFoldBlock(cost, s, cur, j, len, row_min);
    j += len;
  }
  return row_min;
}

// Batched kernels, AVX2 tier: 8 query lanes per group; see the SSE batched
// kernels for the shared structure and bit-identity argument. mul+add (no
// FMA) keeps each lane equal to the scalar per-query accumulation.

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT void BatchedSquaredEuclideanEarlyAbandonAvx2K(
    const float* candidate, const float* queries, size_t n, size_t stride,
    size_t q_count, const float* thresholds, float* out) {
  for (size_t g = 0; g < q_count; g += 8) {
    const size_t lanes = (q_count - g < 8) ? q_count - g : 8;
    const unsigned full = (1u << lanes) - 1u;
    alignas(32) float thr_pad[8] = {kInf, kInf, kInf, kInf,
                                    kInf, kInf, kInf, kInf};
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m256 thr = _mm256_load_ps(thr_pad);
    __m256 acc = _mm256_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const __m256 c = _mm256_set1_ps(candidate[i + j]);
        const __m256 qv = _mm256_loadu_ps(queries + (i + j) * stride + g);
        const __m256 d = _mm256_sub_ps(c, qv);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(acc, thr, _CMP_GE_OQ)));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(32) float sums[8];
        _mm256_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const __m256 c = _mm256_set1_ps(candidate[i]);
        const __m256 qv = _mm256_loadu_ps(queries + i * stride + g);
        const __m256 d = _mm256_sub_ps(c, qv);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      }
      alignas(32) float sums[8];
      _mm256_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

ODYSSEY_TARGET_AVX2
ODYSSEY_HOT void BatchedLbKeoghEarlyAbandonAvx2K(const float* candidate,
                                     const float* upper, const float* lower,
                                     size_t n, size_t stride, size_t q_count,
                                     const float* thresholds, float* out) {
  for (size_t g = 0; g < q_count; g += 8) {
    const size_t lanes = (q_count - g < 8) ? q_count - g : 8;
    const unsigned full = (1u << lanes) - 1u;
    alignas(32) float thr_pad[8] = {kInf, kInf, kInf, kInf,
                                    kInf, kInf, kInf, kInf};
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m256 thr = _mm256_load_ps(thr_pad);
    __m256 acc = _mm256_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const size_t at = (i + j) * stride + g;
        const __m256 c = _mm256_set1_ps(candidate[i + j]);
        const __m256 du = _mm256_sub_ps(c, _mm256_loadu_ps(upper + at));
        const __m256 dl = _mm256_sub_ps(_mm256_loadu_ps(lower + at), c);
        const __m256 d =
            _mm256_max_ps(_mm256_max_ps(du, dl), _mm256_setzero_ps());
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(acc, thr, _CMP_GE_OQ)));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(32) float sums[8];
        _mm256_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const size_t at = i * stride + g;
        const __m256 c = _mm256_set1_ps(candidate[i]);
        const __m256 du = _mm256_sub_ps(c, _mm256_loadu_ps(upper + at));
        const __m256 dl = _mm256_sub_ps(_mm256_loadu_ps(lower + at), c);
        const __m256 d =
            _mm256_max_ps(_mm256_max_ps(du, dl), _mm256_setzero_ps());
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      }
      alignas(32) float sums[8];
      _mm256_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    SquaredEuclideanAvx2K,
    SquaredEuclideanEarlyAbandonAvx2K,
    LbKeoghAvx2K,
    LbKeoghEarlyAbandonAvx2K,
    BatchedSquaredEuclideanEarlyAbandonAvx2K,
    BatchedLbKeoghEarlyAbandonAvx2K,
    PaaAvx2K,
    DtwRowAvx2K,
};

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

// -------------------------------------------------------------- AVX-512
// F+DQ only (DQ for the 256-bit extract in the horizontal sum): the widest
// deployed AVX-512 baseline, present on every Skylake-SP+ server part. Same
// per-function target-attribute scheme as AVX2, only called after CPUID.

#define ODYSSEY_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512dq,fma")))

ODYSSEY_TARGET_AVX512 inline float HorizontalSum512(__m512 v) {
  const __m256 half = _mm256_add_ps(_mm512_castps512_ps256(v),
                                    _mm512_extractf32x8_ps(v, 1));
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(half),
                        _mm256_extractf128_ps(half, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(_mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55)));
}

// 64-byte variant of the Aligned32 fast-path predicate: SeriesCollection
// rows are 64-byte aligned, so lane-multiple lengths take vmovaps with no
// scalar tail. Same bit-identity promise as AVX2: the fast path keeps the
// generic loop's exact accumulation order.
inline bool Aligned64(const float* p) {
  return (reinterpret_cast<uintptr_t>(p) & 63u) == 0;
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT float SquaredEuclideanAvx512K(const float* a, const float* b, size_t n) {
  __m512 acc = _mm512_setzero_ps();
  if (n % 16 == 0 && Aligned64(a) && Aligned64(b)) {
    for (size_t i = 0; i < n; i += 16) {
      const __m512 d =
          _mm512_sub_ps(_mm512_load_ps(a + i), _mm512_load_ps(b + i));
      acc = _mm512_fmadd_ps(d, d, acc);
    }
    return HorizontalSum512(acc);
  }
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  float sum = HorizontalSum512(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT float SquaredEuclideanEarlyAbandonAvx512K(const float* a, const float* b,
                                          size_t n, float threshold) {
  // The 16-point abandon block is exactly one 512-bit vector, so the
  // cadence costs one horizontal sum per FMA — the tier where checking
  // every block is cheapest.
  __m512 acc = _mm512_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  if (n % 16 == 0 && Aligned64(a) && Aligned64(b)) {
    while (i < n) {
      const __m512 d =
          _mm512_sub_ps(_mm512_load_ps(a + i), _mm512_load_ps(b + i));
      acc = _mm512_fmadd_ps(d, d, acc);
      i += 16;
      sum = HorizontalSum512(acc);
      if (sum >= threshold) return sum;
    }
    return sum;
  }
  while (i + 16 <= n) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
    i += 16;
    sum = HorizontalSum512(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX512 inline __m512 LbKeoghGap512(const float* upper,
                                                  const float* lower,
                                                  const float* candidate) {
  const __m512 c = _mm512_loadu_ps(candidate);
  const __m512 du = _mm512_sub_ps(c, _mm512_loadu_ps(upper));
  const __m512 dl = _mm512_sub_ps(_mm512_loadu_ps(lower), c);
  return _mm512_max_ps(_mm512_max_ps(du, dl), _mm512_setzero_ps());
}

ODYSSEY_TARGET_AVX512 inline __m512 LbKeoghGap512Aligned(
    const float* upper, const float* lower, const float* candidate) {
  const __m512 c = _mm512_load_ps(candidate);
  const __m512 du = _mm512_sub_ps(c, _mm512_load_ps(upper));
  const __m512 dl = _mm512_sub_ps(_mm512_load_ps(lower), c);
  return _mm512_max_ps(_mm512_max_ps(du, dl), _mm512_setzero_ps());
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT float LbKeoghAvx512K(const float* upper, const float* lower,
                     const float* candidate, size_t n) {
  __m512 acc = _mm512_setzero_ps();
  if (n % 16 == 0 && Aligned64(upper) && Aligned64(lower) &&
      Aligned64(candidate)) {
    for (size_t i = 0; i < n; i += 16) {
      const __m512 d =
          LbKeoghGap512Aligned(upper + i, lower + i, candidate + i);
      acc = _mm512_fmadd_ps(d, d, acc);
    }
    return HorizontalSum512(acc);
  }
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 d = LbKeoghGap512(upper + i, lower + i, candidate + i);
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  float sum = HorizontalSum512(acc);
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT float LbKeoghEarlyAbandonAvx512K(const float* upper, const float* lower,
                                 const float* candidate, size_t n,
                                 float threshold) {
  __m512 acc = _mm512_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  if (n % 16 == 0 && Aligned64(upper) && Aligned64(lower) &&
      Aligned64(candidate)) {
    while (i < n) {
      const __m512 d =
          LbKeoghGap512Aligned(upper + i, lower + i, candidate + i);
      acc = _mm512_fmadd_ps(d, d, acc);
      i += 16;
      sum = HorizontalSum512(acc);
      if (sum >= threshold) return sum;
    }
    return sum;
  }
  while (i + 16 <= n) {
    const __m512 d = LbKeoghGap512(upper + i, lower + i, candidate + i);
    acc = _mm512_fmadd_ps(d, d, acc);
    i += 16;
    sum = HorizontalSum512(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = LbKeoghPointGap(upper[i], lower[i], candidate[i]);
    sum += d * d;
  }
  return sum;
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT void PaaAvx512K(const float* series, size_t n, int segments, double* out) {
  size_t begin = 0;
  for (int i = 0; i < segments; ++i) {
    const size_t end =
        (static_cast<size_t>(i) + 1) * n / static_cast<size_t>(segments);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    size_t t = begin;
    for (; t + 16 <= end; t += 16) {
      acc0 = _mm512_add_pd(acc0,
                           _mm512_cvtps_pd(_mm256_loadu_ps(series + t)));
      acc1 = _mm512_add_pd(acc1,
                           _mm512_cvtps_pd(_mm256_loadu_ps(series + t + 8)));
    }
    double sum = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
    for (; t < end; ++t) sum += series[t];
    out[i] = sum / static_cast<double>(end - begin);
    begin = end;
  }
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT float DtwRowAvx512K(float ai, const float* b, const float* prev, float* cur,
                    size_t jlo, size_t jhi) {
  float row_min = kInf;
  size_t j = jlo;
  if (j == 0) {
    const float d = ai - b[0];
    cur[0] = d * d + prev[0];
    row_min = cur[0];
    j = 1;
  }
  // Same staging scheme as the SSE row kernel (see its comment); 16 lanes,
  // mul (not FMA) so the DP rows stay bit-identical across ISAs.
  float cost[kDtwBlock];
  float s[kDtwBlock];
  const __m512 vai = _mm512_set1_ps(ai);
  while (j <= jhi) {
    const size_t len = (jhi - j + 1 < kDtwBlock) ? jhi - j + 1 : kDtwBlock;
    size_t t = 0;
    for (; t + 16 <= len; t += 16) {
      const __m512 d = _mm512_sub_ps(vai, _mm512_loadu_ps(b + j + t));
      const __m512 c = _mm512_mul_ps(d, d);
      _mm512_storeu_ps(cost + t, c);
      const __m512 p0 = _mm512_loadu_ps(prev + j + t);
      const __m512 p1 = _mm512_loadu_ps(prev + j + t - 1);
      _mm512_storeu_ps(s + t, _mm512_add_ps(c, _mm512_min_ps(p0, p1)));
    }
    DtwStageTail(ai, b, prev, j, t, len, cost, s);
    row_min = DtwFoldBlock(cost, s, cur, j, len, row_min);
    j += len;
  }
  return row_min;
}

// Batched kernels, AVX-512 tier: 16 query lanes per group — the whole
// interleaved stride in one register — with native k-mask compares instead
// of movemask. Structure and bit-identity argument as in the SSE tier.
//
// Groups of at most 8 queries delegate to the AVX2 bodies: a 512-bit
// register would carry more padding lanes than queries, and 256-bit ops
// dodge the wide-vector license downclocking, so the 8-lane kernel is
// measurably faster there (every tier computes the same scalar-reference
// bits, so delegation cannot change any output).

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT void BatchedSquaredEuclideanEarlyAbandonAvx512K(
    const float* candidate, const float* queries, size_t n, size_t stride,
    size_t q_count, const float* thresholds, float* out) {
  if (q_count <= 8) {
    BatchedSquaredEuclideanEarlyAbandonAvx2K(candidate, queries, n, stride,
                                             q_count, thresholds, out);
    return;
  }
  for (size_t g = 0; g < q_count; g += 16) {
    const size_t lanes = (q_count - g < 16) ? q_count - g : 16;
    const unsigned full = (lanes == 16) ? 0xFFFFu : (1u << lanes) - 1u;
    alignas(64) float thr_pad[16];
    for (size_t l = 0; l < 16; ++l) thr_pad[l] = kInf;
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m512 thr = _mm512_load_ps(thr_pad);
    __m512 acc = _mm512_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const __m512 c = _mm512_set1_ps(candidate[i + j]);
        const __m512 qv = _mm512_loadu_ps(queries + (i + j) * stride + g);
        const __m512 d = _mm512_sub_ps(c, qv);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed = static_cast<unsigned>(
          _mm512_cmp_ps_mask(acc, thr, _CMP_GE_OQ));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(64) float sums[16];
        _mm512_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const __m512 c = _mm512_set1_ps(candidate[i]);
        const __m512 qv = _mm512_loadu_ps(queries + i * stride + g);
        const __m512 d = _mm512_sub_ps(c, qv);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
      }
      alignas(64) float sums[16];
      _mm512_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

ODYSSEY_TARGET_AVX512
ODYSSEY_HOT void BatchedLbKeoghEarlyAbandonAvx512K(const float* candidate,
                                       const float* upper, const float* lower,
                                       size_t n, size_t stride, size_t q_count,
                                       const float* thresholds, float* out) {
  if (q_count <= 8) {
    BatchedLbKeoghEarlyAbandonAvx2K(candidate, upper, lower, n, stride,
                                    q_count, thresholds, out);
    return;
  }
  for (size_t g = 0; g < q_count; g += 16) {
    const size_t lanes = (q_count - g < 16) ? q_count - g : 16;
    const unsigned full = (lanes == 16) ? 0xFFFFu : (1u << lanes) - 1u;
    alignas(64) float thr_pad[16];
    for (size_t l = 0; l < 16; ++l) thr_pad[l] = kInf;
    for (size_t l = 0; l < lanes; ++l) thr_pad[l] = thresholds[g + l];
    const __m512 thr = _mm512_load_ps(thr_pad);
    __m512 acc = _mm512_setzero_ps();
    unsigned frozen = 0;
    size_t i = 0;
    while (i + 16 <= n && frozen != full) {
      for (size_t j = 0; j < 16; ++j) {
        const size_t at = (i + j) * stride + g;
        const __m512 c = _mm512_set1_ps(candidate[i + j]);
        const __m512 du = _mm512_sub_ps(c, _mm512_loadu_ps(upper + at));
        const __m512 dl = _mm512_sub_ps(_mm512_loadu_ps(lower + at), c);
        const __m512 d =
            _mm512_max_ps(_mm512_max_ps(du, dl), _mm512_setzero_ps());
        acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
      }
      i += 16;
      const unsigned crossed = static_cast<unsigned>(
          _mm512_cmp_ps_mask(acc, thr, _CMP_GE_OQ));
      const unsigned newly = crossed & full & ~frozen;
      if (newly != 0) {
        alignas(64) float sums[16];
        _mm512_store_ps(sums, acc);
        for (size_t l = 0; l < lanes; ++l) {
          if ((newly >> l) & 1u) out[g + l] = sums[l];
        }
        frozen |= newly;
      }
    }
    if (frozen != full) {
      for (; i < n; ++i) {
        const size_t at = i * stride + g;
        const __m512 c = _mm512_set1_ps(candidate[i]);
        const __m512 du = _mm512_sub_ps(c, _mm512_loadu_ps(upper + at));
        const __m512 dl = _mm512_sub_ps(_mm512_loadu_ps(lower + at), c);
        const __m512 d =
            _mm512_max_ps(_mm512_max_ps(du, dl), _mm512_setzero_ps());
        acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
      }
      alignas(64) float sums[16];
      _mm512_store_ps(sums, acc);
      for (size_t l = 0; l < lanes; ++l) {
        if (((frozen >> l) & 1u) == 0) out[g + l] = sums[l];
      }
    }
  }
}

constexpr KernelTable kAvx512Table = {
    Isa::kAvx512,
    SquaredEuclideanAvx512K,
    SquaredEuclideanEarlyAbandonAvx512K,
    LbKeoghAvx512K,
    LbKeoghEarlyAbandonAvx512K,
    BatchedSquaredEuclideanEarlyAbandonAvx512K,
    BatchedLbKeoghEarlyAbandonAvx512K,
    PaaAvx512K,
    DtwRowAvx512K,
};

bool CpuHasAvx512() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") && CpuHasAvx2Fma();
}

#endif  // defined(ODYSSEY_X86)

// ------------------------------------------------------------- dispatch

Isa BestSupportedIsa() {
#if defined(ODYSSEY_X86)
  if (CpuHasAvx512()) return Isa::kAvx512;
  return CpuHasAvx2Fma() ? Isa::kAvx2 : Isa::kSse;
#else
  return Isa::kScalar;
#endif
}

Isa ResolveIsa() {
  Isa isa = BestSupportedIsa();
  const char* env = std::getenv("ODYSSEY_SIMD");
  if (env != nullptr) {
    Isa requested = isa;  // unknown values and "auto" keep the best ISA
    if (std::strcmp(env, "scalar") == 0) {
      requested = Isa::kScalar;
    } else if (std::strcmp(env, "sse") == 0) {
      requested = Isa::kSse;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = Isa::kAvx512;
    }
    // The override can only lower the ISA: asking for one the CPU lacks
    // degrades to the best supported level instead of crashing.
    if (static_cast<int>(requested) < static_cast<int>(isa)) isa = requested;
  }
  return isa;
}

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
#if defined(ODYSSEY_X86)
    case Isa::kAvx512:
      return &kAvx512Table;
    case Isa::kAvx2:
      return &kAvx2Table;
    case Isa::kSse:
      return &kSseTable;
#else
    case Isa::kAvx512:
    case Isa::kAvx2:
    case Isa::kSse:
      return &kScalarTable;  // non-x86 builds carry only the scalar tier
#endif
    case Isa::kScalar:
      return &kScalarTable;
  }
  return &kScalarTable;  // unreachable; keeps -Wreturn-type satisfied
}

// Resolves the dispatched table once and, under ODYSSEY_SIMD_LOG, reports
// the choice to stderr — a silently degraded CI machine (e.g. AVX-512
// requested, SSE resolved) would otherwise poison cross-run baseline
// comparisons without a trace in the bench logs.
const KernelTable* ResolveActiveTable() {
  const Isa best = BestSupportedIsa();
  const Isa chosen = ResolveIsa();
  if (std::getenv("ODYSSEY_SIMD_LOG") != nullptr) {
    std::fprintf(stderr, "odyssey: simd tier %s (best supported %s)\n",
                 IsaName(chosen), IsaName(best));
  }
  return TableFor(chosen);
}

}  // namespace

namespace {

// Multi-candidate scoring backends. Each lane is one candidate's strict
// sequential sub+mul+add chain in point order — bit-identical to the
// per-query scalar kernel (this file pins -ffp-contract=off, and the SSE
// paths only ever apply ELEMENT-wise ops across lanes, never horizontal
// ones). Freeze-by-pointer-swap gives scalar-exact early abandonment: a
// lane whose partial crosses the threshold at a 16-point boundary gets its
// series pointer redirected to the query itself, so every later point
// contributes (query - query)^2 == +0.0f — and adding +0.0f to a
// non-negative float is the bit-exact identity. The lane's sum stays frozen
// at exactly the boundary where the scalar kernel would have returned it,
// with no extra per-point arithmetic.

#if defined(ODYSSEY_X86)

// Accumulates 4 points × 4 lanes into `acc` (lane l in element l): four
// contiguous loads, an in-register 4x4 transpose, then element-wise
// sub/mul/add per point. The transpose shuffles hide in the shadow of the
// accumulator's loop-carried add latency, which is what bounds this loop.
inline __m128 MultiStep4Sse(const float* query, size_t i, const float* s0,
                            const float* s1, const float* s2, const float* s3,
                            __m128 acc) {
  __m128 r0 = _mm_loadu_ps(s0 + i);
  __m128 r1 = _mm_loadu_ps(s1 + i);
  __m128 r2 = _mm_loadu_ps(s2 + i);
  __m128 r3 = _mm_loadu_ps(s3 + i);
  _MM_TRANSPOSE4_PS(r0, r1, r2, r3);  // rk = all 4 lanes at point i + k
  __m128 d = _mm_sub_ps(_mm_set1_ps(query[i]), r0);
  acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  d = _mm_sub_ps(_mm_set1_ps(query[i + 1]), r1);
  acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  d = _mm_sub_ps(_mm_set1_ps(query[i + 2]), r2);
  acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  d = _mm_sub_ps(_mm_set1_ps(query[i + 3]), r3);
  acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  return acc;
}

// One sub-16 tail point for 4 lanes (no abandon checks in the tail, like
// the scalar kernel; frozen lanes read the query and add +0.0f).
inline __m128 MultiTailSse(const float* query, size_t i, const float* s0,
                           const float* s1, const float* s2, const float* s3,
                           __m128 acc) {
  const __m128 col = _mm_set_ps(s3[i], s2[i], s1[i], s0[i]);
  const __m128 d = _mm_sub_ps(_mm_set1_ps(query[i]), col);
  return _mm_add_ps(acc, _mm_mul_ps(d, d));
}

// 4 lanes, one accumulator chain. x86-64 baseline (SSE2) — always
// available, so there is no dispatch and no scalar twin to keep in sync.
ODYSSEY_HOT void MultiLanes4Sse(const float* query, const float* const* lanes,
                                size_t n, float threshold, float* sums) {
  const float* s0 = lanes[0];
  const float* s1 = lanes[1];
  const float* s2 = lanes[2];
  const float* s3 = lanes[3];
  __m128 acc = _mm_setzero_ps();
  const __m128 thresh = _mm_set1_ps(threshold);
  unsigned frozen = 0;  // bit l set = lane l frozen
  size_t i = 0;
  while (i + 16 <= n) {
    acc = MultiStep4Sse(query, i, s0, s1, s2, s3, acc);
    acc = MultiStep4Sse(query, i + 4, s0, s1, s2, s3, acc);
    acc = MultiStep4Sse(query, i + 8, s0, s1, s2, s3, acc);
    acc = MultiStep4Sse(query, i + 12, s0, s1, s2, s3, acc);
    i += 16;
    const unsigned crossed =
        static_cast<unsigned>(_mm_movemask_ps(_mm_cmpge_ps(acc, thresh))) &
        ~frozen;
    if (crossed != 0) {
      if ((crossed & 1u) != 0) s0 = query;
      if ((crossed & 2u) != 0) s1 = query;
      if ((crossed & 4u) != 0) s2 = query;
      if ((crossed & 8u) != 0) s3 = query;
      frozen |= crossed;
      if (frozen == 0xFu) break;
    }
  }
  if (frozen != 0xFu) {
    for (; i < n; ++i) acc = MultiTailSse(query, i, s0, s1, s2, s3, acc);
  }
  _mm_storeu_ps(sums, acc);
}

// 8 lanes as two independent 4-lane chains: the second accumulator fills
// the first chain's add-latency bubbles, roughly doubling lane throughput
// over MultiLanes4Sse for full flushes.
ODYSSEY_HOT void MultiLanes8Sse(const float* query, const float* const* lanes,
                                size_t n, float threshold, float* sums) {
  const float* s0 = lanes[0];
  const float* s1 = lanes[1];
  const float* s2 = lanes[2];
  const float* s3 = lanes[3];
  const float* s4 = lanes[4];
  const float* s5 = lanes[5];
  const float* s6 = lanes[6];
  const float* s7 = lanes[7];
  __m128 acc_a = _mm_setzero_ps();
  __m128 acc_b = _mm_setzero_ps();
  const __m128 thresh = _mm_set1_ps(threshold);
  unsigned frozen = 0;  // bits 0-3: chain A lanes, bits 4-7: chain B lanes
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; j += 4) {
      acc_a = MultiStep4Sse(query, i + j, s0, s1, s2, s3, acc_a);
      acc_b = MultiStep4Sse(query, i + j, s4, s5, s6, s7, acc_b);
    }
    i += 16;
    const unsigned crossed =
        (static_cast<unsigned>(_mm_movemask_ps(_mm_cmpge_ps(acc_a, thresh))) |
         static_cast<unsigned>(_mm_movemask_ps(_mm_cmpge_ps(acc_b, thresh)))
             << 4) &
        ~frozen;
    if (crossed != 0) {
      if ((crossed & 0x01u) != 0) s0 = query;
      if ((crossed & 0x02u) != 0) s1 = query;
      if ((crossed & 0x04u) != 0) s2 = query;
      if ((crossed & 0x08u) != 0) s3 = query;
      if ((crossed & 0x10u) != 0) s4 = query;
      if ((crossed & 0x20u) != 0) s5 = query;
      if ((crossed & 0x40u) != 0) s6 = query;
      if ((crossed & 0x80u) != 0) s7 = query;
      frozen |= crossed;
      if (frozen == 0xFFu) break;
    }
  }
  if (frozen != 0xFFu) {
    for (; i < n; ++i) {
      acc_a = MultiTailSse(query, i, s0, s1, s2, s3, acc_a);
      acc_b = MultiTailSse(query, i, s4, s5, s6, s7, acc_b);
    }
  }
  _mm_storeu_ps(sums, acc_a);
  _mm_storeu_ps(sums + 4, acc_b);
}

// 8 lanes in one 256-bit accumulator. The win over MultiLanes8Sse is port
// pressure: baseline-SSE query broadcasts cost a shuffle each, and with two
// 4x4 transposes per 4 points the single shuffle port becomes the bound;
// here vbroadcastss is a pure load-port op and the full 8x8 transpose costs
// 3 shuffle-port ops per point, which hides entirely under the
// accumulator's add-latency chain. Element-wise ops only, so each lane's
// sum is still the scalar kernel's — picking this path by CPUID can never
// change a result, only its speed.
ODYSSEY_TARGET_AVX2 ODYSSEY_HOT void MultiLanes8Avx2(
    const float* query, const float* const* lanes, size_t n, float threshold,
    float* sums) {
  const float* s0 = lanes[0];
  const float* s1 = lanes[1];
  const float* s2 = lanes[2];
  const float* s3 = lanes[3];
  const float* s4 = lanes[4];
  const float* s5 = lanes[5];
  const float* s6 = lanes[6];
  const float* s7 = lanes[7];
  __m256 acc = _mm256_setzero_ps();
  const __m256 thresh = _mm256_set1_ps(threshold);
  unsigned frozen = 0;  // bit l set = lane l frozen
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t h = 0; h < 16; h += 8) {
      const __m256 r0 = _mm256_loadu_ps(s0 + i + h);
      const __m256 r1 = _mm256_loadu_ps(s1 + i + h);
      const __m256 r2 = _mm256_loadu_ps(s2 + i + h);
      const __m256 r3 = _mm256_loadu_ps(s3 + i + h);
      const __m256 r4 = _mm256_loadu_ps(s4 + i + h);
      const __m256 r5 = _mm256_loadu_ps(s5 + i + h);
      const __m256 r6 = _mm256_loadu_ps(s6 + i + h);
      const __m256 r7 = _mm256_loadu_ps(s7 + i + h);
      // 8x8 transpose, standard unpack/shuffle/permute ladder. u_k carries
      // lanes 0-3 at points {k, k+4} in its two 128-bit halves, v_k lanes
      // 4-7; the vperm2f128 pairs then assemble one full 8-lane column per
      // point so the accumulate below runs in strict point order.
      const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
      const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
      const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
      const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
      const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
      const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
      const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
      const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
      const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 v0 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 v1 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 v2 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 v3 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 col0 = _mm256_permute2f128_ps(u0, v0, 0x20);
      const __m256 col1 = _mm256_permute2f128_ps(u1, v1, 0x20);
      const __m256 col2 = _mm256_permute2f128_ps(u2, v2, 0x20);
      const __m256 col3 = _mm256_permute2f128_ps(u3, v3, 0x20);
      const __m256 col4 = _mm256_permute2f128_ps(u0, v0, 0x31);
      const __m256 col5 = _mm256_permute2f128_ps(u1, v1, 0x31);
      const __m256 col6 = _mm256_permute2f128_ps(u2, v2, 0x31);
      const __m256 col7 = _mm256_permute2f128_ps(u3, v3, 0x31);
      __m256 d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h), col0);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 1), col1);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 2), col2);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 3), col3);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 4), col4);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 5), col5);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 6), col6);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
      d = _mm256_sub_ps(_mm256_broadcast_ss(query + i + h + 7), col7);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    i += 16;
    const unsigned crossed =
        static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_cmp_ps(acc, thresh, _CMP_GE_OQ))) &
        ~frozen;
    if (crossed != 0) {
      if ((crossed & 0x01u) != 0) s0 = query;
      if ((crossed & 0x02u) != 0) s1 = query;
      if ((crossed & 0x04u) != 0) s2 = query;
      if ((crossed & 0x08u) != 0) s3 = query;
      if ((crossed & 0x10u) != 0) s4 = query;
      if ((crossed & 0x20u) != 0) s5 = query;
      if ((crossed & 0x40u) != 0) s6 = query;
      if ((crossed & 0x80u) != 0) s7 = query;
      frozen |= crossed;
      if (frozen == 0xFFu) break;
    }
  }
  if (frozen != 0xFFu && i < n) {
    __m128 acc_a = _mm256_castps256_ps128(acc);
    __m128 acc_b = _mm256_extractf128_ps(acc, 1);
    for (; i < n; ++i) {
      acc_a = MultiTailSse(query, i, s0, s1, s2, s3, acc_a);
      acc_b = MultiTailSse(query, i, s4, s5, s6, s7, acc_b);
    }
    _mm_storeu_ps(sums, acc_a);
    _mm_storeu_ps(sums + 4, acc_b);
    return;
  }
  _mm256_storeu_ps(sums, acc);
}

#else  // !defined(ODYSSEY_X86)

// Portable backend: L interleaved scalar chains with the same
// freeze-by-pointer-swap boundaries. Fixed L so the compiler fully unrolls
// the lane loops.
template <size_t L>
void MultiLanesGeneric(const float* query, const float* const* lanes,
                       size_t n, float threshold, float* sums) {
  const float* s[L];
  float a[L];
  for (size_t l = 0; l < L; ++l) {
    s[l] = lanes[l];
    a[l] = 0.0f;
  }
  size_t frozen = 0;
  size_t i = 0;
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j) {
      const float q = query[i + j];
      for (size_t l = 0; l < L; ++l) {
        const float d = q - s[l][i + j];
        a[l] += d * d;
      }
    }
    i += 16;
    for (size_t l = 0; l < L; ++l) {
      if (s[l] != query && a[l] >= threshold) {
        s[l] = query;
        ++frozen;
      }
    }
    if (frozen == L) break;
  }
  if (frozen < L) {
    for (; i < n; ++i) {
      const float q = query[i];
      for (size_t l = 0; l < L; ++l) {
        const float d = q - s[l][i];
        a[l] += d * d;
      }
    }
  }
  for (size_t l = 0; l < L; ++l) sums[l] = a[l];
}

#endif  // defined(ODYSSEY_X86)

}  // namespace

ODYSSEY_HOT void MultiSquaredEuclideanEarlyAbandon(const float* query,
                                                   const float* const* series,
                                                   size_t count, size_t n,
                                                   float threshold,
                                                   float* out) {
  if (count == 0) return;
  // Partial flushes pad the missing lanes with the last real candidate: a
  // padded lane mirrors its source exactly (same sums, same freeze point),
  // so it never delays the all-frozen break, and its result is simply not
  // written out. Counts that fit one chain run the half-width pass; either
  // way a given candidate's lane math is identical, so which pass a flush
  // lands in can never change a reported distance.
  const float* lanes[kMultiCandidateLanes];
  for (size_t c = 0; c < kMultiCandidateLanes; ++c) {
    lanes[c] = series[c < count ? c : count - 1];
  }
  float sums[kMultiCandidateLanes];
  static_assert(kMultiCandidateLanes == 8,
                "multi-candidate backends are written for 8 lanes");
#if defined(ODYSSEY_X86)
  // The AVX2 path honors the resolved tier (ODYSSEY_SIMD can force it off);
  // every backend returns bit-identical sums, so the pick is speed-only.
  if (count <= 4) {
    MultiLanes4Sse(query, lanes, n, threshold, sums);
  } else if (static_cast<int>(ActiveIsa()) >=
             static_cast<int>(Isa::kAvx2)) {
    MultiLanes8Avx2(query, lanes, n, threshold, sums);
  } else {
    MultiLanes8Sse(query, lanes, n, threshold, sums);
  }
#else
  if (count <= 4) {
    MultiLanesGeneric<4>(query, lanes, n, threshold, sums);
  } else {
    MultiLanesGeneric<8>(query, lanes, n, threshold, sums);
  }
#endif
  for (size_t c = 0; c < count; ++c) out[c] = sums[c];
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kSse:
      return "sse";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";  // unreachable; keeps -Wreturn-type satisfied
}

const KernelTable& ScalarTable() { return kScalarTable; }

const KernelTable* SseTable() {
#if defined(ODYSSEY_X86)
  return &kSseTable;
#else
  return nullptr;
#endif
}

const KernelTable* Avx2Table() {
#if defined(ODYSSEY_X86)
  if (CpuHasAvx2Fma()) return &kAvx2Table;
#endif
  return nullptr;
}

const KernelTable* Avx512Table() {
#if defined(ODYSSEY_X86)
  if (CpuHasAvx512()) return &kAvx512Table;
#endif
  return nullptr;
}

const KernelTable& ActiveTable() {
  static const KernelTable* const table = ResolveActiveTable();
  return *table;
}

Isa ActiveIsa() { return ActiveTable().isa; }

}  // namespace simd
}  // namespace odyssey
