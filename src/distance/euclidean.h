#ifndef ODYSSEY_DISTANCE_EUCLIDEAN_H_
#define ODYSSEY_DISTANCE_EUCLIDEAN_H_

#include <cstddef>

namespace odyssey {

/// Euclidean ("real") distance kernels. The library works in *squared*
/// distance internally (monotone in the true distance, saves the sqrt in the
/// hot loop); public results are reported as true distances by the callers.

/// Squared Euclidean distance between two length-n series. Dispatches at
/// runtime to the best supported kernel (AVX2 / SSE / scalar, see
/// src/distance/simd.h; overridable with ODYSSEY_SIMD=scalar|sse|avx2).
float SquaredEuclidean(const float* a, const float* b, size_t n);

/// Early-abandoning squared Euclidean distance: returns the exact squared
/// distance if it is < `threshold`, otherwise returns some value >=
/// `threshold` as soon as the running sum crosses it. This is the
/// best-so-far pruning primitive of every data-series index.
float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float threshold);

/// Portable scalar reference implementations (exposed for testing the SIMD
/// kernels against).
float SquaredEuclideanScalar(const float* a, const float* b, size_t n);
float SquaredEuclideanEarlyAbandonScalar(const float* a, const float* b,
                                         size_t n, float threshold);

/// True if runtime dispatch selected the AVX2 kernels.
bool HasAvx2Kernels();

}  // namespace odyssey

#endif  // ODYSSEY_DISTANCE_EUCLIDEAN_H_
