#include "src/distance/lb_keogh.h"

#include <algorithm>
#include <deque>

#include "src/common/check.h"
#include "src/common/summary_stats.h"
#include "src/distance/simd.h"

namespace odyssey {

Envelope BuildEnvelope(const float* q, size_t n, size_t window) {
  summary_stats::CountEnvelope();
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  // Lemire's streaming min/max over the sliding window [i-window, i+window].
  std::deque<size_t> maxq, minq;
  const size_t w = window;
  for (size_t i = 0; i < n + w; ++i) {
    if (i < n) {
      while (!maxq.empty() && q[maxq.back()] <= q[i]) maxq.pop_back();
      maxq.push_back(i);
      while (!minq.empty() && q[minq.back()] >= q[i]) minq.pop_back();
      minq.push_back(i);
    }
    if (i >= w) {
      const size_t center = i - w;  // envelope position now fully covered
      while (!maxq.empty() && maxq.front() + w < center) maxq.pop_front();
      while (!minq.empty() && minq.front() + w < center) minq.pop_front();
      env.upper[center] = q[maxq.front()];
      env.lower[center] = q[minq.front()];
    }
  }
  return env;
}

float SquaredLbKeogh(const Envelope& envelope, const float* candidate) {
  return simd::ActiveTable().lb_keogh(envelope.upper.data(),
                                      envelope.lower.data(), candidate,
                                      envelope.length());
}

float SquaredLbKeoghEarlyAbandon(const Envelope& envelope,
                                 const float* candidate, float threshold) {
  return simd::ActiveTable().lb_keogh_early_abandon(
      envelope.upper.data(), envelope.lower.data(), candidate,
      envelope.length(), threshold);
}

}  // namespace odyssey
