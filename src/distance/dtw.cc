#include "src/distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/hotpath.h"
#include "src/distance/simd.h"

namespace odyssey {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// The two rolling DP rows, owned per thread and reused across calls. The
/// DP used to construct two n-float vectors on every distance call — two
/// heap allocations per scanned candidate in DTW mode, squarely inside the
/// hot-path purity contract's scoring loops.
struct DtwScratch {
  std::vector<float> prev;
  std::vector<float> cur;
};

DtwScratch& ScratchForThisThread() {
  static thread_local DtwScratch scratch;
  return scratch;
}

// Shared band DP. When `threshold` is finite, abandons as soon as a full row
// exceeds it (every warping path must pass through each row's band, so the
// row minimum lower-bounds the final value). Row 0 is a plain prefix sum;
// every later row goes through the dispatched dtw_row kernel, which stages
// the point costs and the prev-row mins with SIMD.
ODYSSEY_HOT float BandDtw(const float* a, const float* b, size_t n,
                          size_t window, float threshold)
    ODYSSEY_HOT_ALLOWS(
        "alloc: the DP-row assigns below are grow-only thread-local scratch "
        "— allocation-free at steady state (counting-allocator-asserted)") {
  if (n == 0) return 0.0f;
  window = std::min(window, n - 1);
  const simd::KernelTable& kernels = simd::ActiveTable();

  // Two rolling DP rows over the full length; cells outside the band stay
  // +inf. For the window sizes the paper uses (<= 15% of n) the wasted cells
  // are cheap and the code stays simple. The rows live in thread-local
  // scratch: the assigns refill them with +inf (same O(n) init the old
  // per-call vectors paid) but reuse the capacity across calls.
  DtwScratch& scratch = ScratchForThisThread();
  scratch.prev.assign(n, kInf);
  scratch.cur.assign(n, kInf);
  std::vector<float>& prev = scratch.prev;
  std::vector<float>& cur = scratch.cur;

  // Row 0: the only predecessor of (0, j) is (0, j-1), so the row is the
  // running prefix sum of point costs; its minimum is the first cell.
  {
    const size_t jhi = std::min(n - 1, window);
    float run = 0.0f;
    for (size_t j = 0; j <= jhi; ++j) {
      const float d = a[0] - b[j];
      run += d * d;
      cur[j] = run;
    }
    if (cur[0] >= threshold) return cur[0];
    std::swap(prev, cur);
  }

  for (size_t i = 1; i < n; ++i) {
    const size_t jlo = (i >= window) ? i - window : 0;
    const size_t jhi = std::min(n - 1, i + window);
    // The buffers are ping-ponged, so cur still holds row i-2. Only the two
    // cells flanking this row's band are ever read before being written
    // (cur[jlo-1] as the in-row left neighbor, and both flanks as prev
    // cells of row i+1, whose band grows by at most one on each side) —
    // resetting them is enough, no O(n) refill.
    if (jlo > 0) cur[jlo - 1] = kInf;
    if (jhi + 1 < n) cur[jhi + 1] = kInf;
    const float row_min =
        kernels.dtw_row(a[i], b, prev.data(), cur.data(), jlo, jhi);
    if (row_min >= threshold) return row_min;
    std::swap(prev, cur);
  }
  return prev[n - 1];
}

}  // namespace

ODYSSEY_HOT float SquaredDtw(const float* a, const float* b, size_t n,
                             size_t window) {
  return BandDtw(a, b, n, window, kInf);
}

ODYSSEY_HOT float SquaredDtwEarlyAbandon(const float* a, const float* b,
                                         size_t n, size_t window,
                                         float threshold) {
  return BandDtw(a, b, n, window, threshold);
}

void ReserveDtwScratch(size_t n) {
  DtwScratch& scratch = ScratchForThisThread();
  scratch.prev.reserve(n);
  scratch.cur.reserve(n);
}

size_t WarpingWindowFromFraction(size_t length, double fraction) {
  if (fraction <= 0.0) return 0;
  const double w = std::ceil(fraction * static_cast<double>(length));
  return std::max<size_t>(1, static_cast<size_t>(w));
}

}  // namespace odyssey
