#include "src/distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace odyssey {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

inline float PointCost(float x, float y) {
  const float d = x - y;
  return d * d;
}

// Shared band DP. When `threshold` is finite, abandons as soon as a full row
// exceeds it (every warping path must pass through each row's band, so the
// row minimum lower-bounds the final value).
float BandDtw(const float* a, const float* b, size_t n, size_t window,
              float threshold) {
  if (n == 0) return 0.0f;
  window = std::min(window, n - 1);

  // Two rolling DP rows over the full length; cells outside the band stay
  // +inf. For the window sizes the paper uses (<= 15% of n) the wasted cells
  // are cheap and the code stays simple.
  std::vector<float> prev(n, kInf), cur(n, kInf);

  for (size_t i = 0; i < n; ++i) {
    const size_t jlo = (i >= window) ? i - window : 0;
    const size_t jhi = std::min(n - 1, i + window);
    float row_min = kInf;
    for (size_t j = jlo; j <= jhi; ++j) {
      const float cost = PointCost(a[i], b[j]);
      float best;
      if (i == 0 && j == 0) {
        best = 0.0f;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);                 // insertion
        if (j > 0) best = std::min(best, cur[j - 1]);              // deletion
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);    // match
      }
      cur[j] = best + cost;
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min >= threshold) return row_min;
    std::swap(prev, cur);
    std::fill(cur.begin(), cur.end(), kInf);
  }
  return prev[n - 1];
}

}  // namespace

float SquaredDtw(const float* a, const float* b, size_t n, size_t window) {
  return BandDtw(a, b, n, window, kInf);
}

float SquaredDtwEarlyAbandon(const float* a, const float* b, size_t n,
                             size_t window, float threshold) {
  return BandDtw(a, b, n, window, threshold);
}

size_t WarpingWindowFromFraction(size_t length, double fraction) {
  if (fraction <= 0.0) return 0;
  const double w = std::ceil(fraction * static_cast<double>(length));
  return std::max<size_t>(1, static_cast<size_t>(w));
}

}  // namespace odyssey
