#ifndef ODYSSEY_DISTANCE_LB_KEOGH_H_
#define ODYSSEY_DISTANCE_LB_KEOGH_H_

#include <cstddef>
#include <vector>

namespace odyssey {

/// The LB_Keogh lower bound for DTW (Keogh & Ratanamahatana 2005), used by
/// the paper's DTW extension (Section 4): a candidate series is pruned when
/// its squared distance to the query's warping envelope already exceeds the
/// best-so-far squared DTW distance.

/// Upper/lower warping envelope of a query: upper[i] = max of q over
/// [i-window, i+window], lower[i] = min over the same range.
struct Envelope {
  std::vector<float> upper;
  std::vector<float> lower;

  size_t length() const { return upper.size(); }
};

/// Builds the envelope of `q` for the given window (in points). Uses the
/// Lemire streaming min/max algorithm, O(n).
Envelope BuildEnvelope(const float* q, size_t n, size_t window);

/// Squared LB_Keogh: sum over i of the squared gap between candidate[i] and
/// the envelope band. Guaranteed <= SquaredDtw(query, candidate, window).
float SquaredLbKeogh(const Envelope& envelope, const float* candidate);

/// Early-abandoning variant (returns >= threshold once crossed).
float SquaredLbKeoghEarlyAbandon(const Envelope& envelope,
                                 const float* candidate, float threshold);

}  // namespace odyssey

#endif  // ODYSSEY_DISTANCE_LB_KEOGH_H_
