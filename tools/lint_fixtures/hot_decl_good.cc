// Fixture: every ODYSSEY_HOT definition here is fine — declared hot in
// hot_api.h, or anonymous-namespace / static (definition is the only
// visible site).
#define ODYSSEY_HOT __attribute__((hot))

namespace fixture {

class HotHolder {
 public:
  float MethodHot(float x);
};

namespace {

ODYSSEY_HOT float FileLocalKernel(const float* a, unsigned long n) {
  float sum = 0.0f;
  for (unsigned long i = 0; i < n; ++i) sum += a[i];
  return sum;
}

}  // namespace

static ODYSSEY_HOT float StaticHelper(float x) { return x * 2.0f; }

ODYSSEY_HOT float DeclaredHot(const float* a, unsigned long n) {
  return FileLocalKernel(a, n) + StaticHelper(a[0]);
}

ODYSSEY_HOT float HotHolder::MethodHot(float x) { return x + 1.0f; }

}  // namespace fixture
