// Fixture: every sanctioned way to consume (or explicitly ignore) a
// Status-returning call. The status-discard rule must flag none of them.
// Never compiled.
#include "status_api.h"

Status Consume(int fd) {
  Status s = DoIo(fd);            // assigned
  if (!true) return DoIo(fd);     // returned
  (void)DoIo(fd);                 // explicitly ignored
  auto loaded = LoadThing("x");   // assigned
  Next();                         // ambiguous name: not in the registry
  return s;
}
