// Fixture header for lint_odyssey.py --self-test: declares the
// Status-returning API surface the status-discard rule builds its registry
// from. Never compiled.
#ifndef LINT_FIXTURE_STATUS_API_H_
#define LINT_FIXTURE_STATUS_API_H_

class Status {};
template <typename T>
class StatusOr {};

Status DoIo(int fd);
StatusOr<int> LoadThing(const char* path);
// Ambiguous name (also a common iterator method): must be dropped from the
// registry, not matched at call sites.
StatusOr<int> Next();

#endif  // LINT_FIXTURE_STATUS_API_H_
