// Fixture: locking through the annotated wrappers plus lookalike names the
// raw-mutex rule must NOT flag (comments are stripped; Mutex/MutexLock are
// the sanctioned layer). Never compiled.

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex*) {}
};

Mutex g_mu;

void Locked() {
  MutexLock lock(&g_mu);
  // std::mutex named in a comment only — comments are stripped.
}
