// Fixture: a raw std::thread construction outside sync.{h,cc}. The
// raw-thread rule must flag it. Never compiled.
#include <thread>

void Spawn() {
  std::thread t([] {});  // <- uncounted spawn
  t.join();
}
