// Fixture: a bare Status-returning call whose result is dropped. The
// status-discard rule must flag the DoIo line. Never compiled.
#include "status_api.h"

void Broken(int fd) {
  DoIo(fd);  // <- dropped Status
}
