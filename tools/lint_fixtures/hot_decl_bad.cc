// Fixture: an externally-visible definition annotated ODYSSEY_HOT with no
// matching annotated declaration in any header — the hot-declared rule
// must flag it.
#define ODYSSEY_HOT __attribute__((hot))

namespace fixture {

ODYSSEY_HOT float UndeclaredHot(const float* a, unsigned long n) {
  float sum = 0.0f;
  for (unsigned long i = 0; i < n; ++i) sum += a[i] * a[i];
  return sum;
}

}  // namespace fixture
