// Fixture: reads only environment variables documented in the fixture
// registry (README_registry.md). The env-registry rule must flag nothing.
// Never compiled.
#include <cstdlib>

const char* Documented() {
  return std::getenv("ODYSSEY_DOCUMENTED_KNOB");
}
