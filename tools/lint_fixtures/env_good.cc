// Fixture: reads only environment variables documented in the fixture
// registry (README_registry.md). The env-registry rule must flag nothing.
// Never compiled.
#include <cstdlib>

const char* Documented() {
  return std::getenv("ODYSSEY_DOCUMENTED_KNOB");
}

// An ISA-gated reader: kernels selected behind a runtime AVX-512 check read
// their override knob exactly like plain code does, and the registry rule
// must see through the target attribute (the regex keys on the getenv call,
// not on the function's shape).
__attribute__((target("avx512f"))) const char* DocumentedAvx512Gated() {
  return std::getenv("ODYSSEY_DOCUMENTED_SIMD_KNOB");
}
