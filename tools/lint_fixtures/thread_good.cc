// Fixture: thread-adjacent code that must NOT trip the raw-thread rule —
// std::this_thread contains the substring "thread" but is not a spawn, and
// CountedThread is the sanctioned wrapper. Never compiled.
#include <chrono>
#include <thread>

class CountedThread {};

void Sleepy() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  CountedThread t;
  // std::thread mentioned in a comment only — comments are stripped.
}
