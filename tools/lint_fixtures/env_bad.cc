// Fixture: reads an ODYSSEY_* environment variable that the fixture
// registry (README_registry.md) does not document. The env-registry rule
// must flag it. Never compiled.
#include <cstdlib>

const char* Undocumented() {
  return std::getenv("ODYSSEY_SECRET_KNOB");  // <- not in the registry
}

// The same AVX-512-gated shape with an undocumented knob must still be
// flagged: hiding a getenv inside a target-attributed kernel is not an
// escape from the registry.
__attribute__((target("avx512f"))) const char* UndocumentedAvx512Gated() {
  return std::getenv("ODYSSEY_SECRET_SIMD_KNOB");  // <- not in the registry
}
