// Fixture: reads an ODYSSEY_* environment variable that the fixture
// registry (README_registry.md) does not document. The env-registry rule
// must flag it. Never compiled.
#include <cstdlib>

const char* Undocumented() {
  return std::getenv("ODYSSEY_SECRET_KNOB");  // <- not in the registry
}
