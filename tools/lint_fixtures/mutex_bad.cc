// Fixture: raw std locking primitives outside sync.{h,cc}. The raw-mutex
// rule must flag them. Never compiled.
#include <mutex>

std::mutex g_mu;  // <- naked mutex

void Locked() {
  std::lock_guard<std::mutex> lock(g_mu);  // <- unannotated guard
}
