// Fixture header for the hot-declared rule: the declarations here carry
// ODYSSEY_HOT, so same-named .cc definitions are properly declared.
#define ODYSSEY_HOT __attribute__((hot))
#define ODYSSEY_HOT_ALLOWS(reason)

namespace fixture {

ODYSSEY_HOT float DeclaredHot(const float* a, unsigned long n);

class HotHolder {
 public:
  ODYSSEY_HOT float MethodHot(float x) ODYSSEY_HOT_ALLOWS("lock: fixture");
};

}  // namespace fixture
