#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repo's markdown docs.

Scans the given markdown files (default: every *.md at the repo root) for
inline links and checks that every *relative* target — `[text](path)`,
optionally with a `#anchor` — exists in the working tree. External links
(http/https/mailto) are ignored; `file#anchor` only checks `file`;
path-less pure anchors (`#section`) are accepted as-is.

    python3 tools/check_doc_links.py            # repo-root *.md
    python3 tools/check_doc_links.py README.md ARCHITECTURE.md

Exit codes: 0 = all links resolve, 1 = at least one broken link (listed on
stderr). CI runs this as the docs job, so a renamed file or section cannot
silently orphan README/ARCHITECTURE/ROADMAP cross-references.
"""

import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; markdown images
# ![alt](target) match too, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_file(doc: pathlib.Path, repo_root: pathlib.Path) -> list:
    broken = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            # Relative to the doc's own directory, like a markdown viewer.
            resolved = (doc.parent / path).resolve()
            try:
                resolved.relative_to(repo_root)
            except ValueError:
                broken.append((doc, lineno, target, "escapes the repo"))
                continue
            if not resolved.exists():
                broken.append((doc, lineno, target, "does not exist"))
    return broken


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    if len(sys.argv) > 1:
        docs = [pathlib.Path(arg).resolve() for arg in sys.argv[1:]]
    else:
        docs = sorted(repo_root.glob("*.md"))
    missing = [d for d in docs if not d.exists()]
    if missing:
        for d in missing:
            print(f"error: no such file: {d}", file=sys.stderr)
        return 1

    broken = []
    checked = 0
    for doc in docs:
        broken.extend(check_file(doc, repo_root))
        checked += 1
    if broken:
        print(f"{len(broken)} broken intra-repo link(s):", file=sys.stderr)
        for doc, lineno, target, why in broken:
            rel = doc.relative_to(repo_root)
            print(f"  {rel}:{lineno}: ({target}) {why}", file=sys.stderr)
        return 1
    print(f"checked {checked} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
