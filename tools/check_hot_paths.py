#!/usr/bin/env python3
"""Hot-path purity checker: proves ODYSSEY_HOT functions stay pure.

Every function annotated ODYSSEY_HOT (src/common/hotpath.h) promises the
scoring-loop purity contract: no heap allocation, no lock acquisition, no
blocking wait, no syscall/I/O, no throwing construct — transitively,
through everything it calls, including calls dispatched through the SIMD
kernel tables (src/distance/simd.h). This tool builds a static call graph
of src/ and reports every path from an ODYSSEY_HOT root to a forbidden
sink, so a `push_back` sneaking three calls below a scan loop fails CI
instead of showing up as an allocation spike in a flame graph.

Front end: a deliberately textual one (comment stripping + brace walking
over the sources named by compile_commands.json), in the same spirit as
tools/lint_odyssey.py. The container that runs the tier-1 gate has no
clang binary, and `-ast-dump=json` emits hundreds of MB per TU — far past
the <60s budget this job has. The textual graph over-approximates name
resolution (an unqualified callee resolves to every same-named definition),
which errs on the side of reporting; the committed allowlist absorbs the
few deliberate exceptions.

Sink categories (the vocabulary of ODYSSEY_HOT_ALLOWS and the allowlist):

  alloc     operator new / malloc / container growth (push_back, resize,
            reserve, assign, ...) on a receiver whose name chain does not
            contain "scratch" — growth of self-documenting scratch buffers
            is sanctioned because they are grow-only and reach a steady
            state (asserted by the counting-allocator tests).
  lock      Mutex::Lock, MutexLock guards, std lock wrappers.
  wait      CondVar waits, sleeps, joins.
  io        getenv, stdio, iostreams, file syscalls.
  throw     `throw`, .at(), stoi-family.
  indirect  a call through a std::function-typed field or a function
            pointer the checker cannot resolve (kernel-table slots ARE
            resolved, through the tables' positional initializers).

Escapes, in decreasing order of preference:
  1. name the receiver chain "scratch" (alloc only — and only do this for
     genuinely grow-only reusable buffers);
  2. ODYSSEY_HOT_ALLOWS("cat1,cat2: reason") on the function, which
     excuses those categories in that function's *own body* only;
  3. an entry in tools/hotpath_allowlist.txt (reviewed in the diff).

Usage:
  tools/check_hot_paths.py                   # check the repo, exit 1 on findings
  tools/check_hot_paths.py --self-test       # run against tools/hotpath_fixtures/
  tools/check_hot_paths.py --cache-dir DIR   # persist per-file parses (sha256 keyed)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tools" / "hotpath_fixtures"
ALLOWLIST = REPO / "tools" / "hotpath_allowlist.txt"

# Bump to invalidate cached parses when the parser or sink tables change.
PARSER_VERSION = "1"

CATEGORIES = ("alloc", "lock", "wait", "io", "throw", "indirect")

# ----------------------------------------------------------------------------
# Sink tables
# ----------------------------------------------------------------------------

# Free functions / any call position.
SINK_NAMES = {
    "malloc": "alloc", "calloc": "alloc", "realloc": "alloc",
    "strdup": "alloc", "make_unique": "alloc", "make_shared": "alloc",
    "to_string": "alloc",
    "MutexLock": "lock", "lock_guard": "lock", "unique_lock": "lock",
    "scoped_lock": "lock", "shared_lock": "lock",
    "sleep_for": "wait", "sleep_until": "wait",
    "getenv": "io", "setenv": "io", "system": "io",
    "printf": "io", "fprintf": "io", "vfprintf": "io", "fputs": "io",
    "puts": "io", "fopen": "io", "fclose": "io", "fread": "io",
    "fwrite": "io", "fflush": "io", "fseek": "io",
    "stoi": "throw", "stol": "throw", "stoul": "throw", "stoull": "throw",
    "stof": "throw", "stod": "throw",
}

# Method-position sinks (receiver chain present or the bare method name).
SINK_METHODS = {
    "Lock": "lock", "lock": "lock",
    "Wait": "wait", "WaitFor": "wait", "WaitUntil": "wait",
    "WaitIdle": "wait", "wait": "wait", "wait_for": "wait",
    "wait_until": "wait", "Join": "wait", "join": "wait",
    "at": "throw",
}

# Container growth: alloc sinks unless the receiver chain carries the
# "scratch" token (grow-only reusable buffers reach a steady state).
GROWTH_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "assign",
    "insert", "emplace", "append", "push", "push_front", "emplace_front",
}

# Callee names too generic to resolve by name: dozens of classes define
# them as one-line accessors, so resolving `x.size()` to *every* size()
# in the repo (including e.g. Mailbox::size, which locks) would drown the
# report in receiver-type confusions. Mirrors lint_odyssey.py's
# AMBIGUOUS_STATUS_NAMES escape. Anything substantive must not hide
# behind one of these names.
AMBIGUOUS_CALLEES = {
    "size", "empty", "data", "begin", "end", "front", "back",
    "get", "value", "length", "capacity", "load", "store",
}

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "catch", "new", "delete", "throw", "defined", "decltype", "noexcept",
    "static_assert", "alignas", "case", "else", "do", "operator",
}

NEW_KEYWORD = re.compile(r"\bnew\b")
THROW_KEYWORD = re.compile(r"\bthrow\b")
STREAM_IO = re.compile(r"\bstd::(?:cout|cerr|clog)\b")
# A container constructed with arguments allocates right there.
CONTAINER_CTOR = re.compile(
    r"\b(?:std::)?(?:vector|deque|string|basic_string|map|set|"
    r"unordered_map|unordered_set|multimap|multiset)\s*<[^;(){}=&]*>"
    r"\s+\w+\s*\("
)
CALL = re.compile(
    r"((?:[A-Za-z_]\w*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\("
)
FUNCTION_FIELD = re.compile(r"\bstd::function\s*<[^;]*>\s*(\w+)\s*[;=]")
ALLOWS_CALL = re.compile(r"\bODYSSEY_HOT_ALLOWS\s*\(")
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)*)"')
FN_TAIL = re.compile(r"(?:\)|\bconst\b|\bnoexcept\b|\boverride\b|\bfinal\b)\s*$")
FN_NAME = re.compile(r"([A-Za-z_~][\w]*(?:::~?[A-Za-z_]\w*)*)\s*\(")
CLASS_HEAD = re.compile(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)")
NAMESPACE_HEAD = re.compile(r"\bnamespace\b\s*([A-Za-z_]\w*)?\s*$")

# ----------------------------------------------------------------------------
# Text preparation
# ----------------------------------------------------------------------------


def strip_comments(text, keep_strings=False):
    """Removes // and /* */ comments (and, unless keep_strings, string and
    char literal contents), preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            out.append(text[i:end] if keep_strings else c + c)
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_preprocessor(text):
    """Blanks preprocessor lines (and their continuations), keeping \\n."""
    out = []
    in_directive = False
    for line in text.split("\n"):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            out.append(line)
    return "\n".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ----------------------------------------------------------------------------
# Per-file parse
# ----------------------------------------------------------------------------


def parse_allowances(text_with_strings):
    """Maps line -> (categories, reason) for each ODYSSEY_HOT_ALLOWS("..")
    in the file. Literal concatenation across lines is honored."""
    allowances = {}
    for m in ALLOWS_CALL.finditer(text_with_strings):
        i = m.end()
        depth = 1
        while i < len(text_with_strings) and depth:
            if text_with_strings[i] == "(":
                depth += 1
            elif text_with_strings[i] == ")":
                depth -= 1
            i += 1
        arg = text_with_strings[m.end():i - 1]
        reason = "".join(STRING_LITERAL.findall(arg))
        cats_part, _, why = reason.partition(":")
        cats = tuple(c.strip() for c in cats_part.split(",") if c.strip())
        bad = [c for c in cats if c not in CATEGORIES]
        line = line_of(text_with_strings, m.start())
        if not cats or bad or not why.strip():
            allowances[line] = ("__malformed__",), reason
        else:
            allowances[line] = cats, why.strip()
    return allowances


def classify_head(head):
    h = head.strip()
    if not h:
        return "blk", None
    if h[-1] in "=,([":
        return "blk", None  # aggregate init / lambda intro / initializer
    m = NAMESPACE_HEAD.search(h)
    if m:
        return "ns", m.group(1) or "<anon>"
    if re.search(r"\benum\b", h):
        return "blk", None
    m = CLASS_HEAD.search(h)
    if m and "(" not in h[m.end():]:
        return "cls", m.group(1)
    if "(" not in h or not FN_TAIL.search(h):
        return "blk", None
    m = FN_NAME.search(h)
    if m is None:
        return "blk", None
    name = m.group(1)
    if name.split("::")[0] in KEYWORDS or name.startswith("operator"):
        return "blk", None
    return "fn", name


def scan_body(body, body_offset, text):
    """Extracts (sinks, calls) from a function body.

    sinks: [(category, line, detail)]; calls: [(callee, line)].
    """
    sinks, calls = [], []

    def add_sink(cat, offset, detail):
        sinks.append((cat, line_of(text, body_offset + offset), detail))

    for m in NEW_KEYWORD.finditer(body):
        add_sink("alloc", m.start(), "`new` expression")
    for m in THROW_KEYWORD.finditer(body):
        add_sink("throw", m.start(), "`throw` expression")
    for m in STREAM_IO.finditer(body):
        add_sink("io", m.start(), f"{m.group(0)} stream I/O")
    for m in CONTAINER_CTOR.finditer(body):
        add_sink("alloc", m.start(), "container constructed with arguments")
    for m in CALL.finditer(body):
        chain, callee = m.group(1), m.group(2)
        if callee in KEYWORDS or callee in AMBIGUOUS_CALLEES:
            continue
        if callee in GROWTH_METHODS:
            if "scratch" not in chain.lower():
                add_sink("alloc", m.start(),
                         f"'{callee}' grows a non-scratch container "
                         f"('{chain}{callee}')")
            continue
        if callee in SINK_METHODS:
            add_sink(SINK_METHODS[callee], m.start(),
                     f"'{chain}{callee}' ({SINK_METHODS[callee]})")
            continue
        if callee in SINK_NAMES:
            add_sink(SINK_NAMES[callee], m.start(),
                     f"'{callee}' ({SINK_NAMES[callee]})")
            continue
        calls.append((callee, line_of(text, body_offset + m.start())))
    return sinks, calls


def parse_struct_slots(text):
    """Slot names, in declaration order, of every struct that carries at
    least one function-pointer member — the KernelTable shape."""
    slots_by_struct = {}
    for m in re.finditer(r"\bstruct\s+(\w+)\s*\{", text):
        depth, i = 1, m.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        body = text[m.end():i - 1]
        slots = []
        has_fnptr = False
        # Top-level declarations only: mask nested braces (inline methods).
        masked, d = [], 0
        for c in body:
            if c == "{":
                d += 1
            elif c == "}":
                d -= 1
                continue
            masked.append(c if d == 0 else " ")
        for decl in "".join(masked).split(";"):
            fp = re.search(r"\(\s*\*\s*(\w+)\s*\)\s*\(", decl)
            if fp:
                slots.append(fp.group(1))
                has_fnptr = True
                continue
            plain = re.match(r"\s*[\w:<>,\s*&]+?(\w+)\s*(?:=[^;]*)?$",
                             decl.rstrip())
            if plain and "(" not in decl:
                slots.append(plain.group(1))
        if has_fnptr:
            slots_by_struct[m.group(1)] = slots
    return slots_by_struct


def parse_table_inits(text, slots_by_struct):
    """Positional aggregate initializers of fn-pointer structs:
    {table_name: {slot: bound_function_name}}."""
    tables = {}
    struct_alt = "|".join(map(re.escape, slots_by_struct)) or r"\b\B"
    for m in re.finditer(
            r"\b(" + struct_alt + r")\s+(\w+)\s*=?\s*\{([^}]*)\}", text):
        struct, table, body = m.group(1), m.group(2), m.group(3)
        slots = slots_by_struct[struct]
        binding = {}
        for idx, item in enumerate(x.strip() for x in body.split(",")):
            if idx >= len(slots) or not item:
                continue
            if re.fullmatch(r"[A-Za-z_][\w:]*", item) and "::" not in item:
                binding[slots[idx]] = item
        tables[table] = (struct, binding, line_of(text, m.start()))
    return tables


def parse_file(path, text):
    """Full parse of one source file. Returns a JSON-serializable dict."""
    with_strings = strip_comments(text, keep_strings=True)
    code = strip_preprocessor(strip_comments(text))
    allowances = parse_allowances(strip_preprocessor(with_strings))

    functions = []
    hot_decls = {}  # name -> {"line": int, "allows": [cats]}

    stack = []  # (kind, name, head_start_offset, body_start_offset)
    head_start = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "{":
            inside_fn = any(e[0] == "fn" for e in stack)
            if inside_fn:
                stack.append(("blk", None, head_start, i + 1))
            else:
                kind, name = classify_head(code[head_start:i])
                stack.append((kind, name, head_start, i + 1))
            head_start = i + 1
        elif c == "}":
            if stack:
                kind, name, h_start, b_start = stack.pop()
                if kind == "fn":
                    head = code[h_start:b_start - 1]
                    head_line = line_of(code, h_start + len(
                        code[h_start:b_start]) - len(
                        code[h_start:b_start].lstrip()))
                    body = code[b_start:i]
                    sinks, calls = scan_body(body, b_start, code)
                    cls = next((e[1] for e in reversed(stack)
                                if e[0] == "cls"), None)
                    qualified = (f"{cls}::{name}"
                                 if cls and "::" not in name else name)
                    allows = []
                    start_line = head_line
                    end_line = line_of(code, b_start)
                    for ln in range(start_line, end_line + 1):
                        if ln in allowances:
                            allows.extend(allowances[ln][0])
                    functions.append({
                        "name": qualified,
                        "last": qualified.split("::")[-1],
                        "line": start_line,
                        "hot": "ODYSSEY_HOT " in head or
                               head.strip().startswith("ODYSSEY_HOT"),
                        "allows": allows,
                        "sinks": sinks,
                        "calls": calls,
                    })
            head_start = i + 1
        elif c == ";":
            inside_fn = any(e[0] == "fn" for e in stack)
            head = code[head_start:i]
            if not inside_fn and "ODYSSEY_HOT" in head:
                m = FN_NAME.search(head)
                if m and m.group(1).split("::")[0] not in KEYWORDS:
                    decl_line = line_of(code, head_start + len(head) -
                                        len(head.lstrip()))
                    end_line = line_of(code, i)
                    allows = []
                    for ln in range(decl_line, end_line + 1):
                        if ln in allowances:
                            allows.extend(allowances[ln][0])
                    name = m.group(1).split("::")[-1]
                    hot_decls[name] = {"line": decl_line, "allows": allows}
            head_start = i + 1
        i += 1

    slots_by_struct = parse_struct_slots(code)
    tables = parse_table_inits(code, slots_by_struct)
    malformed = [
        {"line": ln, "reason": reason}
        for ln, (cats, reason) in allowances.items()
        if cats == ("__malformed__",)
    ]
    return {
        "functions": functions,
        "hot_decls": hot_decls,
        "function_fields": sorted(set(FUNCTION_FIELD.findall(code))),
        "slots": slots_by_struct,
        "tables": tables,
        "malformed_allows": malformed,
    }


def parse_file_cached(path, cache_dir):
    text = path.read_text()
    if cache_dir is None:
        return parse_file(path, text)
    key = hashlib.sha256(
        (PARSER_VERSION + "\n" + text).encode()).hexdigest()
    cache_path = cache_dir / f"{key}.json"
    if cache_path.is_file():
        try:
            return json.loads(cache_path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    parsed = parse_file(path, text)
    cache_dir.mkdir(parents=True, exist_ok=True)
    cache_path.write_text(json.dumps(parsed))
    return parsed


# ----------------------------------------------------------------------------
# Repo model + call-graph analysis
# ----------------------------------------------------------------------------


class Model:
    def __init__(self):
        self.functions = []        # all records, with "file" attached
        self.by_last = {}          # last name -> [records]
        self.hot_decl_allows = {}  # last name -> [cats]
        self.hot_decl_names = set()
        self.function_fields = set()
        self.slot_names = set()
        self.slot_bindings = {}    # slot -> {bound function names}
        self.tables = []           # (file, table, struct, binding, line)
        self.malformed = []        # (file, line, reason)

    def add_file(self, path, parsed):
        rel = str(path)
        for fn in parsed["functions"]:
            fn = dict(fn, file=rel)
            self.functions.append(fn)
            self.by_last.setdefault(fn["last"], []).append(fn)
        for name, decl in parsed["hot_decls"].items():
            self.hot_decl_names.add(name)
            self.hot_decl_allows.setdefault(name, []).extend(decl["allows"])
        self.function_fields.update(parsed["function_fields"])
        for slots in parsed["slots"].values():
            self.slot_names.update(slots)
        for table, (struct, binding, line) in parsed["tables"].items():
            self.tables.append((rel, table, struct, binding, line))
            for slot, fname in binding.items():
                self.slot_bindings.setdefault(slot, set()).add(fname)
        for bad in parsed["malformed_allows"]:
            self.malformed.append((rel, bad["line"], bad["reason"]))

    def is_hot(self, fn):
        return fn["hot"] or fn["last"] in self.hot_decl_names

    def allows_of(self, fn):
        return set(fn["allows"]) | set(
            self.hot_decl_allows.get(fn["last"], []))


class Finding:
    def __init__(self, file, line, category, path_names, detail):
        self.file = file
        self.line = line
        self.category = category
        self.path = path_names  # [root, ..., function containing the sink]
        self.detail = detail

    def __str__(self):
        chain = " -> ".join(self.path)
        return (f"{self.file}:{self.line}: [{self.category}] "
                f"{chain}: {self.detail}")


def analyze(model, max_depth=12):
    """Walks the call graph from every hot root; returns Findings."""
    memo = {}  # id(fn) -> [(category, file, line, subpath, detail)]

    def impurities(fn, stack):
        key = id(fn)
        if key in memo:
            return memo[key]
        if key in stack:
            return []  # recursion cycle: judged at the first visit
        stack = stack | {key}
        allows = model.allows_of(fn)
        out = []
        for cat, line, detail in fn["sinks"]:
            if cat not in allows:
                out.append((cat, fn["file"], line, [fn["name"]], detail))
        for callee, line in fn["calls"]:
            if callee in model.function_fields:
                if "indirect" not in allows:
                    out.append(("indirect", fn["file"], line, [fn["name"]],
                                f"call through std::function field "
                                f"'{callee}'"))
                continue
            targets = list(model.by_last.get(callee, []))
            if callee in model.slot_bindings:
                for bound in model.slot_bindings[callee]:
                    targets.extend(model.by_last.get(bound, []))
            if len(stack) >= max_depth:
                continue
            seen_targets = set()
            for target in targets:
                if id(target) in seen_targets:
                    continue
                seen_targets.add(id(target))
                for cat, file, s_line, subpath, detail in \
                        impurities(target, stack):
                    out.append((cat, file, s_line,
                                [fn["name"]] + subpath, detail))
        # Dedup identical sinks reached via several same-named targets.
        unique = {}
        for item in out:
            unique[(item[0], item[1], item[2], item[4])] = item
        result = list(unique.values())
        memo[key] = result
        return result

    findings = []
    for fn in model.functions:
        if not model.is_hot(fn):
            continue
        for cat, file, line, path, detail in impurities(fn, frozenset()):
            # Only report from roots: paths through intermediate hot
            # functions are reported once, at the outermost root... but a
            # hot function that is also called by another hot function is
            # still its own contract, so report each hot function's own
            # closure and dedup on the sink site + innermost function.
            findings.append(Finding(file, line, cat, path, detail))
    unique = {}
    for f in findings:
        key = (f.file, f.line, f.category, f.path[-1], f.detail)
        prev = unique.get(key)
        if prev is None or len(f.path) < len(prev.path):
            unique[key] = f  # keep the shortest path to each sink
    findings = sorted(unique.values(),
                      key=lambda f: (f.file, f.line, f.category))

    # Kernel-table closure: every bound function must itself be hot.
    for rel, table, struct, binding, line in model.tables:
        for slot, fname in binding.items():
            records = model.by_last.get(fname, [])
            if not records:
                continue  # declared elsewhere; the slot call edge covers it
            if not any(model.is_hot(r) for r in records):
                findings.append(Finding(
                    rel, line, "indirect", [table],
                    f"slot '{slot}' of {struct} binds '{fname}', which is "
                    f"not declared ODYSSEY_HOT"))
    for rel, line, reason in model.malformed:
        findings.append(Finding(
            rel, line, "indirect", ["<config>"],
            f"malformed ODYSSEY_HOT_ALLOWS reason {reason!r} — want "
            f"\"cat1,cat2: reason\" with categories from "
            f"{', '.join(CATEGORIES)}"))
    return findings


# ----------------------------------------------------------------------------
# Allowlist
# ----------------------------------------------------------------------------


def load_allowlist(path):
    """Lines of `<function> <category> <reason...>`; # comments."""
    entries = []
    if not path.is_file():
        return entries
    for ln, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3 or parts[1] not in CATEGORIES:
            print(f"{path}:{ln}: malformed allowlist entry "
                  f"(want `<function> <category> <reason>`)",
                  file=sys.stderr)
            continue
        entries.append({"function": parts[0], "category": parts[1],
                        "reason": parts[2], "used": False})
    return entries


def apply_allowlist(findings, entries):
    kept = []
    for f in findings:
        excused = False
        for e in entries:
            if e["category"] == f.category and \
                    f.path[-1].split("::")[-1] == \
                    e["function"].split("::")[-1]:
                e["used"] = True
                excused = True
                break
        if not excused:
            kept.append(f)
    return kept


# ----------------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------------


def repo_sources(build_dir):
    """Source list: TUs from compile_commands.json (filtered to src/),
    plus every header under src/."""
    files = set()
    cc_json = build_dir / "compile_commands.json"
    if cc_json.is_file():
        for entry in json.loads(cc_json.read_text()):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = (Path(entry["directory"]) / p).resolve()
            try:
                rel = p.relative_to(REPO)
            except ValueError:
                continue
            if rel.parts[0] == "src" and p.is_file():
                files.add(p)
    if not files:
        files.update((REPO / "src").rglob("*.cc"))
    files.update((REPO / "src").rglob("*.h"))
    return sorted(files)


def build_model(paths, cache_dir):
    model = Model()
    for path in paths:
        try:
            rel = path.relative_to(REPO)
        except ValueError:
            rel = path
        model.add_file(rel, parse_file_cached(path, cache_dir))
    return model


def check_repo(build_dir, cache_dir):
    model = build_model(repo_sources(build_dir), cache_dir)
    findings = analyze(model)
    entries = load_allowlist(ALLOWLIST)
    findings = apply_allowlist(findings, entries)
    for f in findings:
        print(f)
    for e in entries:
        if not e["used"]:
            print(f"note: unused allowlist entry "
                  f"`{e['function']} {e['category']}` — remove it",
                  file=sys.stderr)
    hot_count = sum(1 for fn in model.functions if model.is_hot(fn))
    if findings:
        print(f"\ncheck_hot_paths: {len(findings)} finding(s) across "
              f"{hot_count} hot functions", file=sys.stderr)
        return 1
    print(f"check_hot_paths: clean ({hot_count} hot functions, "
          f"{len(model.functions)} analyzed)")
    return 0


def self_test():
    """Runs the checker against tools/hotpath_fixtures/ and asserts each
    fixture's expected findings, mirroring lint_odyssey.py --self-test."""
    failures = []
    paths = sorted(FIXTURES.glob("*.cc")) + sorted(FIXTURES.glob("*.h"))
    if not paths:
        print(f"self-test: no fixtures under {FIXTURES}", file=sys.stderr)
        return 1
    model = build_model(paths, cache_dir=None)
    findings = analyze(model)

    def expect(what, want):
        hits = [f for f in findings if what(f)]
        if want and not hits:
            failures.append(f"missed: {want}")
        return hits

    # 1. Clean chain: a hot function calling a pure helper stays silent.
    clean = [f for f in findings if "CleanScore" in f.path]
    if clean:
        failures.append(f"false positive on clean chain: {clean[0]}")

    # 2. Transitive violation: hot -> helper -> helper -> malloc, reported
    # with the full path.
    hits = expect(lambda f: f.category == "alloc" and
                  f.path[0] == "TransitiveRoot",
                  "transitive alloc via TransitiveRoot")
    if hits and len(hits[0].path) < 3:
        failures.append(f"transitive path too short: {hits[0]}")

    # 3. Allowlisted violation: found raw, suppressed by the allowlist.
    raw = expect(lambda f: f.category == "lock" and
                 f.path[-1] == "AllowlistedLock",
                 "lock in AllowlistedLock (pre-allowlist)")
    entries = [{"function": "AllowlistedLock", "category": "lock",
                "reason": "fixture", "used": False}]
    if apply_allowlist(raw, entries):
        failures.append("allowlist failed to suppress AllowlistedLock")
    if raw and not entries[0]["used"]:
        failures.append("allowlist entry not marked used")

    # 4. Kernel-table edge: a hot caller reaches a table-bound function's
    # sink through the slot call, and a non-hot bound function trips the
    # closure check.
    expect(lambda f: f.category == "io" and
           f.path[0] == "TableCaller" and len(f.path) >= 2,
           "io sink through a kernel-table slot call")
    expect(lambda f: f.category == "indirect" and
           "not declared ODYSSEY_HOT" in f.detail,
           "hot-closure violation on a table slot")

    # 5. ODYSSEY_HOT_ALLOWS scoping: the allowance excuses the function's
    # own body but not its callees.
    allowed = [f for f in findings if f.path[-1] == "AllowedOwnBody"]
    if allowed:
        failures.append(f"ALLOWS failed to excuse own body: {allowed[0]}")
    expect(lambda f: f.category == "alloc" and
           f.path[0] == "AllowsNotInherited" and len(f.path) >= 2,
           "callee sink not excused by the caller's ALLOWS")

    # 6. Scratch-receiver rule: growth on a scratch-named chain is
    # sanctioned, growth on anything else is not.
    scratchy = [f for f in findings if f.path[-1] == "ScratchGrowth"]
    if scratchy:
        failures.append(f"scratch receiver flagged: {scratchy[0]}")
    expect(lambda f: f.category == "alloc" and
           f.path[-1] == "PlainGrowth",
           "growth on a non-scratch receiver")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test: checker behaves on its fixtures "
          f"({len(findings)} raw findings)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="run against tools/hotpath_fixtures/")
    parser.add_argument("--build-dir", type=Path, default=REPO / "build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persist per-file parses keyed on content hash")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return check_repo(args.build_dir, args.cache_dir)


if __name__ == "__main__":
    sys.exit(main())
