#!/usr/bin/env python3
"""Repo-specific lint rules the general-purpose toolchain cannot express.

Five rules, each encoding an invariant the rest of the codebase relies on:

  status-discard   Every call to a Status/StatusOr-returning function must
                   consume the result (assign, return, branch, CHECK) or
                   discard it explicitly with a `(void)` cast. A silently
                   dropped Status turns an I/O failure into corrupt-data
                   debugging three layers later.

  raw-thread       `std::thread` may appear only in src/common/sync.{h,cc}:
                   CountedThread is the process's single sanctioned spawn
                   site, which is what keeps executor_stats::ThreadsSpawned
                   honest (tests assert exact counts). Tests are exempt —
                   their threads are harness scaffolding, not product
                   threads.

  raw-mutex        `std::mutex` / `std::condition_variable` / std lock
                   guards may appear only in src/common/sync.{h,cc}. All
                   product locking goes through the annotated Mutex /
                   MutexLock / CondVar wrappers so clang's -Wthread-safety
                   sees every acquisition. Tests are exempt.

  env-registry     Every `getenv("ODYSSEY_*")` call site must read a
                   variable documented in README.md's environment variable
                   registry table. Undocumented knobs rot into load-bearing
                   magic.

  hot-declared     Every ODYSSEY_HOT annotation on an externally-visible
                   .cc definition must also appear on a declaration in a
                   header. tools/check_hot_paths.py seeds its hot-root set
                   from headers as well as definitions, and callers decide
                   what they may call from the declaration — a .cc-only
                   annotation hides the purity contract from both.
                   Anonymous-namespace and `static` functions are exempt:
                   their definition is the only visible site.

Usage:
  tools/lint_odyssey.py            # lint the repo, exit 1 on findings
  tools/lint_odyssey.py --self-test  # run the rules against the fixtures

The self-test runs every rule against tools/lint_fixtures/ (one bad and one
good fixture per rule) and fails if a rule misses its bad fixture or flags
its good one — so a refactor of this file cannot silently disable a rule.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tools" / "lint_fixtures"

# Directories holding product / benchmark / example sources.
SOURCE_DIRS = ("src", "bench", "examples")
# The one place raw primitives are allowed (the wrapper layer itself).
SYNC_FILES = {"src/common/sync.h", "src/common/sync.cc"}

# ----------------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------------


def repo_files(dirs, suffixes=(".h", ".cc")):
    out = []
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                out.append(path)
    return out


def strip_comments(text, keep_strings=False):
    """Removes // and /* */ comments (and, unless keep_strings, string
    literal contents), preserving line structure so reported line numbers
    stay meaningful."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            out.append(text[i:end] if keep_strings else c + c)
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        rel = self.path.relative_to(REPO) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# ----------------------------------------------------------------------------
# Rule: status-discard
# ----------------------------------------------------------------------------

# Registry entries whose names are too generic to match call sites reliably
# (they collide with unrelated void functions or std names). Their *other*
# call sites are still covered: the functions they forward to are listed.
AMBIGUOUS_STATUS_NAMES = {"Next", "Open", "Load", "Make", "Fit"}

STATUS_DECL = re.compile(
    r"^\s*(?:static\s+)?(?:Status|StatusOr<[^;=]*>)\s+(\w+)\s*\(", re.M
)


def build_status_registry(header_files):
    """Names of functions declared to return Status/StatusOr in headers."""
    names = set()
    for path in header_files:
        text = strip_comments(path.read_text())
        for m in STATUS_DECL.finditer(text):
            names.add(m.group(1))
    names -= AMBIGUOUS_STATUS_NAMES
    # The factory constructors on Status itself produce a value to *use*,
    # but `return Status::IoError(...)` style is the normal consumption and
    # assignment/return always consumes — bare statements are still wrong.
    return names


# A bare call statement: optional receiver chain, then the call, then `;`
# with nothing consuming the value.
def status_discard_findings(files, registry):
    findings = []
    if not registry:
        return findings
    name_alt = "|".join(sorted(re.escape(n) for n in registry))
    bare_call = re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(" + name_alt + r")\s*\("
    )
    consumers = re.compile(
        r"=|\breturn\b|\bif\b|\bwhile\b|\bfor\b|\bswitch\b|\(void\)|"
        r"ODYSSEY_CHECK|ASSERT_|EXPECT_|CHECK"
    )
    for path in files:
        text = strip_comments(path.read_text())
        lines = text.split("\n")
        for idx, line in enumerate(lines, start=1):
            m = bare_call.match(line)
            if m is None:
                continue
            # Reconstruct the whole statement: extend backward while this
            # line is a continuation (`x =` on the previous line makes the
            # call consumed), then forward to the terminating `;`.
            stmt = line
            k = idx - 1  # lines[k - 1] is the previous line
            while k >= 1:
                prev = lines[k - 1].rstrip()
                if prev == "" or prev.endswith((";", "{", "}")):
                    break
                stmt = prev + " " + stmt
                k -= 1
            j = idx
            while ";" not in lines[j - 1] and j < len(lines):
                stmt += " " + lines[j]
                j += 1
            if consumers.search(stmt):
                continue
            findings.append(
                Finding(
                    "status-discard",
                    path,
                    idx,
                    f"result of Status-returning '{m.group(1)}' is dropped; "
                    "consume it or cast to (void)",
                )
            )
    return findings


# ----------------------------------------------------------------------------
# Rules: raw-thread / raw-mutex
# ----------------------------------------------------------------------------

# `std::this_thread` must not match; `\bstd::thread\b` cannot, because the
# token after `std::` is `this_thread`.
RAW_THREAD = re.compile(r"\bstd::thread\b")
RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)


def token_findings(files, rule, pattern, why):
    findings = []
    for path in files:
        rel = str(path.relative_to(REPO)) if path.is_absolute() else str(path)
        if rel in SYNC_FILES:
            continue
        text = strip_comments(path.read_text())
        for idx, line in enumerate(text.split("\n"), start=1):
            m = pattern.search(line)
            if m is not None:
                findings.append(
                    Finding(rule, path, idx, f"'{m.group(0)}' {why}")
                )
    return findings


# ----------------------------------------------------------------------------
# Rule: hot-declared
# ----------------------------------------------------------------------------

# `ODYSSEY_HOT_ALLOWS` cannot match: `_` is a word character, so \b does
# not fall between HOT and _ALLOWS.
HOT_TOKEN = re.compile(r"\bODYSSEY_HOT\b")
HOT_NAME = re.compile(r"([A-Za-z_~][\w]*(?:::~?[A-Za-z_]\w*)*)\s*\(")


def anonymous_namespace_spans(text):
    spans = []
    for m in re.finditer(r"\bnamespace\s*\{", text):
        depth, i = 1, m.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        spans.append((m.start(), i))
    return spans


def hot_annotated_name(head):
    """First function name in a post-ODYSSEY_HOT head, skipping the other
    annotation macros."""
    for m in HOT_NAME.finditer(head):
        if not m.group(1).startswith("ODYSSEY_"):
            return m.group(1)
    return None


def hot_decl_names(header_files):
    """Unqualified names carrying ODYSSEY_HOT anywhere in a header —
    class-scope declarations, free declarations, or inline definitions."""
    names = set()
    for path in header_files:
        text = strip_comments(path.read_text())
        for m in HOT_TOKEN.finditer(text):
            semi = text.find(";", m.end())
            brace = text.find("{", m.end())
            end = min(x for x in (semi, brace, len(text)) if x >= 0)
            name = hot_annotated_name(text[m.end():end])
            if name is not None:
                names.add(name.split("::")[-1])
    return names


def hot_declared_findings(cc_files, declared):
    findings = []
    for path in cc_files:
        text = strip_comments(path.read_text())
        anon = anonymous_namespace_spans(text)
        for m in HOT_TOKEN.finditer(text):
            semi = text.find(";", m.end())
            brace = text.find("{", m.end())
            if brace < 0 or (0 <= semi < brace):
                continue  # a declaration, not a definition
            name = hot_annotated_name(text[m.end():brace])
            if name is None:
                continue
            if any(s <= m.start() < e for s, e in anon):
                continue
            stmt_start = max(text.rfind(";", 0, m.start()),
                             text.rfind("}", 0, m.start())) + 1
            if re.search(r"\bstatic\b", text[stmt_start:m.start()]):
                continue
            if name.split("::")[-1] in declared:
                continue
            line = text.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(
                    "hot-declared",
                    path,
                    line,
                    f"ODYSSEY_HOT on the definition of '{name}' has no "
                    "ODYSSEY_HOT declaration in any header; annotate the "
                    "declaration (or make the function static / "
                    "anonymous-namespace)",
                )
            )
    return findings


# ----------------------------------------------------------------------------
# Rule: env-registry
# ----------------------------------------------------------------------------

GETENV = re.compile(r"getenv\(\s*\"(ODYSSEY_\w+)\"")
REGISTRY_ROW = re.compile(r"^\|\s*`(ODYSSEY_\w+)`")


def readme_env_registry(readme_path):
    registered = set()
    if readme_path.is_file():
        for line in readme_path.read_text().splitlines():
            m = REGISTRY_ROW.match(line)
            if m is not None:
                registered.add(m.group(1))
    return registered


def env_registry_findings(files, registered):
    findings = []
    for path in files:
        text = strip_comments(path.read_text(), keep_strings=True)
        for idx, line in enumerate(text.split("\n"), start=1):
            for m in GETENV.finditer(line):
                if m.group(1) not in registered:
                    findings.append(
                        Finding(
                            "env-registry",
                            path,
                            idx,
                            f"getenv(\"{m.group(1)}\") reads a variable "
                            "missing from README.md's environment variable "
                            "registry table",
                        )
                    )
    return findings


# ----------------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------------


def lint_repo():
    headers = repo_files(["src"], suffixes=(".h",))
    registry = build_status_registry(headers)

    product = repo_files(SOURCE_DIRS)
    product_and_tests = product + repo_files(["tests"])

    findings = []
    findings += status_discard_findings(product_and_tests, registry)
    findings += token_findings(
        product,
        "raw-thread",
        RAW_THREAD,
        "outside src/common/sync.{h,cc}; spawn through CountedThread so "
        "executor_stats::ThreadsSpawned stays honest",
    )
    findings += token_findings(
        product,
        "raw-mutex",
        RAW_MUTEX,
        "outside src/common/sync.{h,cc}; use the annotated Mutex/MutexLock/"
        "CondVar wrappers so -Wthread-safety sees the acquisition",
    )
    findings += env_registry_findings(
        product_and_tests, readme_env_registry(REPO / "README.md")
    )
    findings += hot_declared_findings(
        repo_files(["src"], suffixes=(".cc",)), hot_decl_names(headers)
    )
    return findings


def self_test():
    """Each rule must flag its bad fixture and pass its good fixture."""
    failures = []

    def expect(rule, findings, fixture, want):
        hits = [
            f
            for f in findings
            if f.rule == rule and f.path.name == fixture
        ]
        if want and not hits:
            failures.append(f"{rule}: missed {fixture}")
        if not want and hits:
            failures.append(f"{rule}: false positive on {fixture}: {hits[0]}")

    fixture_files = sorted(FIXTURES.glob("*.cc")) + sorted(FIXTURES.glob("*.h"))
    if not fixture_files:
        print(f"self-test: no fixtures under {FIXTURES}", file=sys.stderr)
        return 1

    registry = build_status_registry([FIXTURES / "status_api.h"])
    if "DoIo" not in registry or "LoadThing" not in registry:
        failures.append("status registry failed to parse status_api.h")
    if "Next" in registry:
        failures.append("status registry kept an ambiguous name")

    status = status_discard_findings(fixture_files, registry)
    expect("status-discard", status, "status_bad.cc", want=True)
    expect("status-discard", status, "status_good.cc", want=False)

    threads = token_findings(fixture_files, "raw-thread", RAW_THREAD, "")
    expect("raw-thread", threads, "thread_bad.cc", want=True)
    expect("raw-thread", threads, "thread_good.cc", want=False)

    mutexes = token_findings(fixture_files, "raw-mutex", RAW_MUTEX, "")
    expect("raw-mutex", mutexes, "mutex_bad.cc", want=True)
    expect("raw-mutex", mutexes, "mutex_good.cc", want=False)

    env = env_registry_findings(
        fixture_files, readme_env_registry(FIXTURES / "README_registry.md")
    )
    expect("env-registry", env, "env_bad.cc", want=True)
    expect("env-registry", env, "env_good.cc", want=False)

    declared = hot_decl_names([FIXTURES / "hot_api.h"])
    if "DeclaredHot" not in declared or "MethodHot" not in declared:
        failures.append("hot-declared registry failed to parse hot_api.h")
    hot = hot_declared_findings(
        [FIXTURES / "hot_decl_bad.cc", FIXTURES / "hot_decl_good.cc"],
        declared,
    )
    expect("hot-declared", hot, "hot_decl_bad.cc", want=True)
    expect("hot-declared", hot, "hot_decl_good.cc", want=False)

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test: all rules behave on their fixtures")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the rules against tools/lint_fixtures/ instead of the repo",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_repo()
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint_odyssey: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_odyssey: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
