// Fixture: a hot scoring chain that is genuinely pure. The checker must
// stay silent on every function here — arithmetic, array indexing, calls
// into other pure helpers, and early returns are all fine.
#define ODYSSEY_HOT __attribute__((hot))

namespace fixture {

float PureHelper(const float* a, const float* b, unsigned long n) {
  float sum = 0.0f;
  for (unsigned long i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

ODYSSEY_HOT float CleanScore(const float* a, const float* b,
                             unsigned long n, float threshold) {
  const float d = PureHelper(a, b, n);
  if (d >= threshold) return threshold;
  return d;
}

}  // namespace fixture
