// Fixture: a deliberate violation that the committed-allowlist mechanism
// must be able to excuse. AllowlistedLock takes a mutex in a hot function
// with no ODYSSEY_HOT_ALLOWS — the self-test checks the raw finding
// exists AND that an allowlist entry `AllowlistedLock lock <reason>`
// suppresses it (and is marked used).
#define ODYSSEY_HOT __attribute__((hot))

namespace fixture {

struct Mutex {
  void Lock();
  void Unlock();
};

ODYSSEY_HOT float AllowlistedLock(Mutex* mu, float x) {
  mu->Lock();
  const float out = x * 2.0f;
  mu->Unlock();
  return out;
}

}  // namespace fixture
