// Fixture: function-pointer dispatch through a KernelTable-shaped struct.
// The checker must resolve `table->score(...)` through the positional
// aggregate initializer below, reach LoggingKernel's fprintf, and report
// it as an io finding whose path runs through TableCaller — the indirect
// edge a per-function scan cannot see. Both kernels also lack the
// ODYSSEY_HOT annotation while being bound into slots, which the
// hot-closure invariant must flag.
#define ODYSSEY_HOT __attribute__((hot))

extern "C" struct FILE_t* stderr_file();
extern "C" int fprintf(struct FILE_t*, const char*, ...);

namespace fixture {

struct MiniTable {
  int isa;
  float (*score)(const float* a, const float* b, unsigned long n);
  float (*bound)(const float* a, unsigned long n);
};

float LoggingKernel(const float* a, const float* b, unsigned long n) {
  fprintf(stderr_file(), "scoring %lu points\n", n);
  float sum = 0.0f;
  for (unsigned long i = 0; i < n; ++i) sum += (a[i] - b[i]) * (a[i] - b[i]);
  return sum;
}

float ColdKernel(const float* a, unsigned long n) {
  float sum = 0.0f;
  for (unsigned long i = 0; i < n; ++i) sum += a[i];
  return sum;
}

constexpr MiniTable kMiniTable = {
    0,
    LoggingKernel,
    ColdKernel,
};

ODYSSEY_HOT float TableCaller(const MiniTable* table, const float* a,
                              const float* b, unsigned long n) {
  return table->score(a, b, n);
}

}  // namespace fixture
