// Fixture: ODYSSEY_HOT_ALLOWS scoping and the scratch-receiver rule.
//
//  - AllowedOwnBody locks under an ALLOWS("lock: ...") — no finding.
//  - AllowsNotInherited carries the same allowance but reaches a *callee*
//    whose body allocates: the allowance excuses only the annotated
//    function's own body, so the alloc must still be reported.
//  - ScratchGrowth grows containers whose receiver chain carries the
//    "scratch" token — sanctioned, no finding.
//  - PlainGrowth grows a non-scratch container — alloc finding.
#define ODYSSEY_HOT __attribute__((hot))
#define ODYSSEY_HOT_ALLOWS(reason)

namespace fixture {

struct Mutex {
  void Lock();
  void Unlock();
};

template <typename T>
struct Vec {
  void push_back(const T& v);
  unsigned long size() const;
};

struct Scratch {
  Vec<float> lanes;
};

ODYSSEY_HOT float AllowedOwnBody(Mutex* mu, float x)
    ODYSSEY_HOT_ALLOWS("lock: fixture merge point, O(1) critical section") {
  mu->Lock();
  const float out = x + 1.0f;
  mu->Unlock();
  return out;
}

void GrowingCallee(Vec<float>* out, float v) {
  out->push_back(v);
}

ODYSSEY_HOT void AllowsNotInherited(Vec<float>* out, float v)
    ODYSSEY_HOT_ALLOWS("alloc: excuses this body only, not callees") {
  GrowingCallee(out, v);
}

ODYSSEY_HOT void ScratchGrowth(Scratch* scratch, float v) {
  scratch->lanes.push_back(v);
}

ODYSSEY_HOT void PlainGrowth(Vec<float>* results, float v) {
  results->push_back(v);
}

}  // namespace fixture
