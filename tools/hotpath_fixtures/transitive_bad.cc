// Fixture: a 2-hop transitive violation. TransitiveRoot is hot and calls
// MiddleHop, which calls DeepHelper, which mallocs — the checker must
// report the alloc with the full TransitiveRoot -> MiddleHop -> DeepHelper
// path, not just the leaf.
#define ODYSSEY_HOT __attribute__((hot))

extern "C" void* malloc(unsigned long);

namespace fixture {

float* DeepHelper(unsigned long n) {
  return static_cast<float*>(malloc(n * sizeof(float)));
}

float MiddleHop(unsigned long n) {
  float* buf = DeepHelper(n);
  return buf == nullptr ? 0.0f : buf[0];
}

ODYSSEY_HOT float TransitiveRoot(unsigned long n) {
  return MiddleHop(n);
}

}  // namespace fixture
